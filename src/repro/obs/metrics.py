"""Streaming histograms and the Prometheus registry.

Promoted from ``repro.server.metrics`` (which re-exports for
compatibility) so every layer of the stack — not just the HTTP
gateway — can record telemetry.

The gateway needs request-latency percentiles that survive millions of
observations without storing them, so :class:`StreamingHistogram` bins
observations into fixed log-spaced buckets — O(1) memory, O(1) record,
O(buckets) quantile — the classic HDR-histogram compromise: quantiles
are exact to within one bucket's relative width (~12% at ten buckets
per decade), which is plenty for p50/p95/p99 dashboards.

:class:`MetricsRegistry` aggregates labelled counters, gauge callbacks,
and histograms, and renders the whole set in the Prometheus text
exposition format for ``GET /metrics``.

Cross-process aggregation: pool workers record into their own
process-local :func:`default_registry`, ship
:meth:`MetricsRegistry.snapshot` back with each result payload, and
the parent folds it in with :meth:`MetricsRegistry.merge_snapshot`.
Histograms merge exactly (identical bucket layouts add bucket-wise);
counters add. Gauges are live callables and deliberately do not cross
the process boundary.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from typing import Callable, Iterable, Mapping, Optional

#: Quantiles every histogram reports on ``/metrics``.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

#: Version stamp on registry snapshots, bumped on layout changes.
#: Version 2 added the exact sum-of-squares to histogram state.
SNAPSHOT_VERSION = 2

#: Snapshot versions :meth:`MetricsRegistry.merge_snapshot` accepts.
#: Version-1 snapshots (pre sum-of-squares) merge losslessly for every
#: pre-existing field; their missing ``sum_sq`` folds in as 0.0, so a
#: merged variance can undercount but counts/buckets/quantiles stay
#: exact.
ACCEPTED_SNAPSHOT_VERSIONS = frozenset({1, 2})


class StreamingHistogram:
    """Fixed log-spaced latency histogram with streaming quantiles.

    Buckets span ``[lo, hi)`` seconds at ``buckets_per_decade``
    log-spaced bins per decade, with open-ended underflow/overflow bins
    at the extremes (clamped to the observed min/max during
    interpolation, so quantiles never invent values outside the data).
    Thread-safe: many request threads record into one histogram.
    """

    def __init__(
        self,
        lo: float = 1e-5,
        hi: float = 100.0,
        buckets_per_decade: int = 10,
    ) -> None:
        if not (0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got ({lo}, {hi})")
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        n = int(math.ceil(math.log10(hi / lo) * buckets_per_decade))
        self._lo = lo
        self._buckets_per_decade = buckets_per_decade
        #: Upper edge of interior bucket ``i``; its lower edge is
        #: ``lo`` for ``i == 0``, else ``_edges[i - 1]``.
        self._edges = [
            lo * 10 ** ((i + 1) / buckets_per_decade) for i in range(n)
        ]
        # counts[0] = underflow (< lo), counts[1 + i] = interior bucket
        # i, counts[-1] = overflow (>= the last edge).
        self._counts = [0] * (len(self._edges) + 2)
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.sum_sq = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, seconds: float) -> None:
        """Fold one observation in."""
        if seconds < 0:
            seconds = 0.0
        if seconds < self._lo:
            index = 0
        else:
            index = 1 + bisect_right(self._edges, seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += seconds
            self.sum_sq += seconds * seconds
            self._min = min(self._min, seconds)
            self._max = max(self._max, seconds)

    # -- exact observed statistics -------------------------------------
    # Bucket counts quantize, but these never do: min/max/mean/stddev
    # come from exact accumulators, so a knee detector comparing a p99
    # against an SLO can trust the true observed extreme rather than a
    # bucket's upper bound.
    @property
    def min(self) -> Optional[float]:
        """Exact observed minimum (``None`` while empty)."""
        return self._min if self.count else None

    @property
    def max(self) -> Optional[float]:
        """Exact observed maximum (``None`` while empty)."""
        return self._max if self.count else None

    @property
    def mean(self) -> float:
        """Exact observed mean (0.0 while empty)."""
        return self.sum / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation from the exact accumulators."""
        if not self.count:
            return 0.0
        variance = self.sum_sq / self.count - self.mean**2
        return math.sqrt(max(0.0, variance))

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of everything recorded.

        An empty histogram reports 0.0 (the documented no-data
        sentinel — never an interpolated fiction). A quantile landing
        in the open-ended overflow bucket reports the observed maximum:
        the log-spaced resolution ends at ``hi``, so interpolating
        across ``[hi, max)`` would fabricate latencies nothing ever
        exhibited, while the maximum is a real observation. Interior
        buckets interpolate linearly, clamped to the observed min/max.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cumulative = 0
            for i, n in enumerate(self._counts):
                if n == 0:
                    continue
                if cumulative + n >= target:
                    if i == len(self._counts) - 1:
                        return self._max  # overflow: no resolution
                    lo_edge, hi_edge = self._bucket_bounds(i)
                    lo_edge = max(lo_edge, self._min)
                    hi_edge = min(hi_edge, self._max)
                    if hi_edge <= lo_edge:
                        return lo_edge
                    frac = (target - cumulative) / n
                    return lo_edge + frac * (hi_edge - lo_edge)
                cumulative += n
            return self._max

    def _bucket_bounds(self, index: int) -> tuple[float, float]:
        # Caller holds the lock. index 0 = underflow, last = overflow.
        if index == 0:
            return (0.0, self._lo)
        if index == len(self._counts) - 1:
            return (self._edges[-1], self._max)
        lower = self._lo if index == 1 else self._edges[index - 2]
        return (lower, self._edges[index - 1])

    def snapshot(self) -> dict:
        """Count, sum, exact min/max/mean, and the summary quantiles."""
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for q in SUMMARY_QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out

    # -- serialization / merge -----------------------------------------
    def to_dict(self) -> dict:
        """Full lossless state, JSON-safe (for cross-process shipping)."""
        with self._lock:
            return {
                "lo": self._lo,
                "buckets_per_decade": self._buckets_per_decade,
                "counts": list(self._counts),
                "count": self.count,
                "sum": self.sum,
                "sum_sq": self.sum_sq,
                "min": self._min if self.count else None,
                "max": self._max if self.count else None,
            }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StreamingHistogram":
        """Rebuild a histogram serialized with :meth:`to_dict`."""
        lo = float(data["lo"])
        bpd = int(data["buckets_per_decade"])
        counts = list(data["counts"])
        # len(counts) = interior buckets + underflow + overflow; invert
        # the edge construction to recover hi (any value inside the
        # last interior bucket reproduces the same layout).
        n_interior = len(counts) - 2
        hi = lo * 10 ** ((n_interior - 0.5) / bpd)
        hist = cls(lo=lo, hi=hi, buckets_per_decade=bpd)
        if len(hist._counts) != len(counts):
            raise ValueError(
                "corrupt histogram snapshot: bucket count mismatch"
            )
        hist._counts = [int(c) for c in counts]
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        # Absent in version-1 snapshots: 0.0 keeps the merge arithmetic
        # total (variance undercounts; everything else stays exact).
        hist.sum_sq = float(data.get("sum_sq", 0.0))
        if data.get("min") is not None:
            hist._min = float(data["min"])
        if data.get("max") is not None:
            hist._max = float(data["max"])
        return hist

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` into this histogram, exactly.

        Both histograms must share a bucket layout (same ``lo`` and
        ``buckets_per_decade``, same bucket count) — the merge is then
        a bucket-wise sum with no resolution loss.
        """
        if (
            self._lo != other._lo
            or self._buckets_per_decade != other._buckets_per_decade
            or len(self._counts) != len(other._counts)
        ):
            raise ValueError(
                "cannot merge histograms with different bucket layouts"
            )
        with other._lock:
            counts = list(other._counts)
            count, total = other.count, other.sum
            total_sq = other.sum_sq
            omin, omax = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self.count += count
            self.sum += total
            self.sum_sq += total_sq
            self._min = min(self._min, omin)
            self._max = max(self._max, omax)


def _label_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{v}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Labelled counters, gauge callbacks, and histograms.

    * ``inc(name, labels)`` — monotonically increasing counters;
    * ``gauge(name, fn)`` — instantaneous values sampled at render
      time (queue depth, in-flight executions, cache occupancy);
    * ``observe(name, seconds, labels)`` — latency histograms rendered
      as Prometheus summaries (quantile series + ``_count``/``_sum``).

    ``render()`` produces the text exposition format.
    """

    def __init__(self, namespace: str = "repro_server") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, str], float] = {}
        self._gauges: dict[tuple[str, str], Callable[[], float]] = {}
        self._histograms: dict[tuple[str, str], StreamingHistogram] = {}
        self._histogram_labels: dict[
            tuple[str, str], Mapping[str, str]
        ] = {}

    # ------------------------------------------------------------------
    def inc(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        value: float = 1,
    ) -> None:
        key = (name, _label_text(labels or {}))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def counter_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float:
        with self._lock:
            return self._counters.get(
                (name, _label_text(labels or {})), 0
            )

    def gauge(
        self,
        name: str,
        fn: Callable[[], float],
        labels: Mapping[str, str] | None = None,
    ) -> None:
        """Register a gauge callback, optionally labelled.

        Labels support info-style families (``build_info{version=...,
        python=...} 1``) alongside the plain instantaneous gauges.
        """
        with self._lock:
            self._gauges[(name, _label_text(labels or {}))] = fn

    def observe(
        self,
        name: str,
        seconds: float,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        labels = dict(labels or {})
        key = (name, _label_text(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = StreamingHistogram()
                self._histograms[key] = histogram
                self._histogram_labels[key] = labels
        histogram.record(seconds)

    def histogram(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> StreamingHistogram | None:
        with self._lock:
            return self._histograms.get(
                (name, _label_text(labels or {}))
            )

    def histograms(
        self, name: str
    ) -> Iterable[tuple[Mapping[str, str], StreamingHistogram]]:
        """All labelled series of one histogram family."""
        with self._lock:
            return [
                (self._histogram_labels[key], hist)
                for key, hist in self._histograms.items()
                if key[0] == name
            ]

    def is_empty(self) -> bool:
        """True when nothing has ever been registered or recorded."""
        with self._lock:
            return not (
                self._counters or self._gauges or self._histograms
            )

    # -- cross-process aggregation -------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe state of every counter and histogram.

        Gauges are live callables bound to this process and are
        intentionally excluded.
        """
        with self._lock:
            counters = [
                [name, labels, value]
                for (name, labels), value in sorted(
                    self._counters.items()
                )
            ]
            histograms = [
                [
                    key[0],
                    key[1],
                    dict(self._histogram_labels[key]),
                    hist,
                ]
                for key, hist in sorted(self._histograms.items())
            ]
        return {
            "version": SNAPSHOT_VERSION,
            "namespace": self.namespace,
            "counters": counters,
            "histograms": [
                [name, text, labels, hist.to_dict()]
                for name, text, labels, hist in histograms
            ],
        }

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold a :meth:`snapshot` from another process into this one.

        Counters add; histograms merge bucket-wise (a histogram family
        not yet present here is adopted wholesale).
        """
        if snap.get("version") not in ACCEPTED_SNAPSHOT_VERSIONS:
            raise ValueError(
                f"unsupported metrics snapshot version: "
                f"{snap.get('version')!r}"
            )
        for name, labels, value in snap.get("counters", []):
            key = (name, labels)
            with self._lock:
                self._counters[key] = (
                    self._counters.get(key, 0) + value
                )
        for name, text, labels, hist_dict in snap.get(
            "histograms", []
        ):
            incoming = StreamingHistogram.from_dict(hist_dict)
            key = (name, text)
            with self._lock:
                existing = self._histograms.get(key)
                if existing is None:
                    self._histograms[key] = incoming
                    self._histogram_labels[key] = dict(labels)
                    continue
            existing.merge(incoming)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition of everything registered."""
        ns = self.namespace
        lines: list[str] = []
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        for name in sorted({n for n, _ in counters}):
            lines.append(f"# TYPE {ns}_{name} counter")
            for (n, labels), value in sorted(counters.items()):
                if n == name:
                    lines.append(f"{ns}_{name}{labels} {_num(value)}")
        for name in sorted({n for n, _ in gauges}):
            lines.append(f"# TYPE {ns}_{name} gauge")
            for (n, labels), fn in sorted(gauges.items()):
                if n != name:
                    continue
                try:
                    value = fn()
                except Exception:
                    value = float("nan")
                lines.append(f"{ns}_{name}{labels} {_num(value)}")
        for name in sorted({n for n, _ in histograms}):
            lines.append(f"# TYPE {ns}_{name} summary")
            for (n, labels), hist in sorted(histograms.items()):
                if n != name:
                    continue
                for q in SUMMARY_QUANTILES:
                    q_labels = (
                        labels[:-1] + f',quantile="{q}"}}'
                        if labels
                        else f'{{quantile="{q}"}}'
                    )
                    lines.append(
                        f"{ns}_{name}{q_labels} {_num(hist.quantile(q))}"
                    )
                lines.append(
                    f"{ns}_{name}_count{labels} {hist.count}"
                )
                lines.append(
                    f"{ns}_{name}_sum{labels} {_num(hist.sum)}"
                )
                # Exact observed extremes and mean: bucket resolution
                # bounds the quantiles, but these never lie.
                lines.append(
                    f"{ns}_{name}_min{labels} "
                    f"{_num(hist.min if hist.min is not None else 0.0)}"
                )
                lines.append(
                    f"{ns}_{name}_max{labels} "
                    f"{_num(hist.max if hist.max is not None else 0.0)}"
                )
                lines.append(
                    f"{ns}_{name}_mean{labels} {_num(hist.mean)}"
                )
        return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    """Prometheus-friendly number formatting (no exponent surprises)."""
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def parse_prometheus(text: str) -> dict[str, dict[str, float]]:
    """Invert :meth:`MetricsRegistry.render` (client-side convenience).

    Returns ``{metric_name: {label_text: value}}`` where ``label_text``
    is the literal ``{...}`` section (empty string when unlabelled).
    """
    out: dict[str, dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name = name_part[: name_part.index("{")]
            labels = name_part[name_part.index("{"):]
        else:
            name, labels = name_part, ""
        try:
            out.setdefault(name, {})[labels] = float(value_part)
        except ValueError:
            continue
    return out


def relabel_prometheus(text: str, extra: Mapping[str, str]) -> str:
    """Stamp extra labels onto every sample of an exposition page.

    The cluster router scrapes each shard gateway's ``/metrics`` and
    republishes the union; without a distinguishing label the shards'
    identically-named series would collide. Sample lines gain the
    ``extra`` labels (merged before any existing ones, so readers that
    sum a family across all label sets — the loadgen attribution path —
    keep working unchanged); comment lines pass through untouched.
    """
    stamp = ",".join(
        f'{key}="{value}"' for key, value in sorted(extra.items())
    )
    if not stamp:
        return text
    out = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            out.append(line)
            continue
        name_part, sep, value_part = stripped.rpartition(" ")
        if not sep:
            out.append(line)
            continue
        if "{" in name_part:
            brace = name_part.index("{")
            rest = name_part[brace + 1:]
            name_part = name_part[:brace] + "{" + stamp + (
                "," + rest if rest != "}" else "}"
            )
        else:
            name_part = name_part + "{" + stamp + "}"
        out.append(f"{name_part} {value_part}")
    return "\n".join(out) + ("\n" if text.endswith("\n") else "")


# ---------------------------------------------------------------------
# Process-global default registry.
#
# Library code (the service pool, the update-phase model) records here
# without needing a registry threaded through every call. Each process
# gets its own instance; pool workers ship snapshot() back with their
# results and the parent merges. The server keeps its own registry for
# request-level telemetry and appends this one to /metrics — the
# namespaces differ ("repro" vs "repro_server"), so families never
# collide.

_default_lock = threading.Lock()
_default_registry: MetricsRegistry | None = None


def default_registry() -> MetricsRegistry:
    """This process's shared registry (namespace ``repro``)."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry(namespace="repro")
        return _default_registry


def set_default_registry(
    registry: MetricsRegistry | None,
) -> MetricsRegistry | None:
    """Swap the process-global registry; returns the previous one.

    Pass ``None`` to reset (the next :func:`default_registry` call
    creates a fresh instance) — handy for test isolation.
    """
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous
