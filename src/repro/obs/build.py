"""Build/version identification shared by every telemetry surface.

One function, :func:`build_info`, names *what code produced this
number*: the package version, the python runtime, and the schema
versions of every versioned artifact the stack emits. The same dict is

* rendered on ``/metrics`` as the conventional info-style gauge
  ``repro_server_build_info{...} 1`` (a constant-1 gauge whose labels
  carry the facts, so a scrape can be joined against the code that
  served it);
* stamped into every ``LoadReport`` (``repro.obs.loadgen``); and
* stamped into every ``BENCH_*.json`` via ``benchmarks/_record.py``,

so a latency curve, a flight recorder, and a benchmark record can
always be traced back to one build.
"""

from __future__ import annotations

import platform


def build_info() -> dict[str, str]:
    """String-valued build identification (JSON- and label-safe)."""
    from repro import __version__
    from repro.obs.loadgen.report import LOAD_REPORT_SCHEMA_VERSION
    from repro.obs.metrics import SNAPSHOT_VERSION

    return {
        "version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "metrics_snapshot_schema": str(SNAPSHOT_VERSION),
        "load_report_schema": str(LOAD_REPORT_SCHEMA_VERSION),
    }
