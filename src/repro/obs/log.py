"""JSON structured logging with spec-hash correlation ids.

The stack logs through ordinary :mod:`logging` loggers under the
``repro`` hierarchy. Nothing is emitted by default (no handler is
attached until :func:`configure_json_logging` runs), so library use
stays silent; the server's ``--log-json`` flag and the tracing CLIs
opt in to one-JSON-object-per-line output on stderr.

Correlation: :func:`correlation_scope` binds a job's spec hash to the
current thread/task via a :class:`contextvars.ContextVar`; every
record formatted inside the scope carries it as ``correlation_id``, so
a single job can be followed across the HTTP handler, the dispatcher
thread, and (worker-side) the pool.
"""

from __future__ import annotations

import contextlib
import contextvars
import datetime
import json
import logging
import os
import sys
from typing import IO, Iterator, Optional

#: Attributes every LogRecord carries; anything else was passed via
#: ``extra=`` and belongs in the JSON payload.
_STANDARD_ATTRS = frozenset(
    logging.makeLogRecord({}).__dict__
) | {"message", "asctime", "taskName"}

_correlation_id: contextvars.ContextVar[Optional[str]] = (
    contextvars.ContextVar("repro_correlation_id", default=None)
)


def get_correlation_id() -> Optional[str]:
    """The correlation id bound to the current context, if any."""
    return _correlation_id.get()


def set_correlation_id(cid: Optional[str]) -> None:
    """Bind ``cid`` (typically a spec hash) to the current context."""
    _correlation_id.set(cid)


@contextlib.contextmanager
def correlation_scope(cid: Optional[str]) -> Iterator[None]:
    """Bind ``cid`` for the duration of the ``with`` block."""
    token = _correlation_id.set(cid)
    try:
        yield
    finally:
        _correlation_id.reset(token)


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message,
    correlation_id (when bound), pid/tid, and any ``extra=`` fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": datetime.datetime.fromtimestamp(
                record.created, tz=datetime.timezone.utc
            ).isoformat(timespec="milliseconds"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
            "pid": record.process,
            "tid": record.thread,
        }
        cid = get_correlation_id()
        if cid:
            payload["correlation_id"] = cid
        for key, value in record.__dict__.items():
            if key in _STANDARD_ATTRS or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=True)


def get_logger(name: str) -> logging.Logger:
    """A logger in the ``repro`` hierarchy (``repro.<name>``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_json_logging(
    stream: Optional[IO[str]] = None,
    level: int = logging.INFO,
) -> logging.Handler:
    """Attach a JSON handler to the ``repro`` logger tree.

    Idempotent per stream: reconfiguring replaces any handler this
    function previously installed rather than stacking duplicates.
    Returns the installed handler (tests detach it in teardown).
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_json", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter())
    handler._repro_json = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    # Keep records out of the (WARNING-level) lastResort handler once
    # we own the output format.
    root.propagate = False
    return handler


def pid_tag() -> str:
    """Short ``pid`` tag for log/trace labels (test-friendly)."""
    return f"pid-{os.getpid()}"
