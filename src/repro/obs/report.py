"""The scheduler-engine flight recorder.

:class:`EngineReport` replaces the ad-hoc ``periodic_report`` dict that
used to live on :class:`~repro.system.update_model.UpdatePhaseModel`:
a structured, mergeable record of what the engine actually did —
warm-sample escalation rungs, lock attempts and confirmations,
super-period lengths, replayed-vs-simulated sweeps, *why* each
fallback to full simulation happened, and which channel scheduling
path served each schedule.

Reports are plain JSON-able state: the service pool snapshots the
model's report before a job, diffs after, and ships the per-job delta
through the result envelope (``SimJobResult.engine_report`` →
``GET /v1/jobs/{id}``); the server dispatcher folds the deltas into
``/metrics`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

#: Fallback reasons the update-phase model classifies. Kept as module
#: constants so the dispatcher's metric labels and the tests agree on
#: spelling.
FALLBACK_NO_METADATA = "no-metadata"
FALLBACK_HORIZON_EXCEEDED = "horizon-exceeded"
FALLBACK_MULTI_CHANNEL = "multi-channel"
FALLBACK_DEADLOCK = "deadlock"
FALLBACK_NO_LOCK = "no-lock"
FALLBACK_ECONOMICS = "economics"

FALLBACK_REASONS = (
    FALLBACK_NO_METADATA,
    FALLBACK_HORIZON_EXCEEDED,
    FALLBACK_MULTI_CHANNEL,
    FALLBACK_DEADLOCK,
    FALLBACK_NO_LOCK,
    FALLBACK_ECONOMICS,
)

_COUNTER_FIELDS = (
    "fast_path",
    "fallback",
    "warm_runs",
    "lock_attempts",
    "locks_confirmed",
    "commands_simulated",
    "commands_replayed",
    "sweeps_extended",
)
_DICT_FIELDS = (
    "fallback_reasons",
    "warm_widths",
    "super_periods",
    "scheduling_paths",
)


@dataclass
class EngineReport:
    """Cumulative counters describing how profiles were produced.

    ``fast_path`` counts steady-state extrapolations, ``fallback`` full
    simulations under ``engine="periodic"`` (with the *reason* tallied
    in ``fallback_reasons``), ``warm_runs`` warm samples scheduled —
    broken down by warm width in ``warm_widths`` (the escalation-ladder
    rungs actually climbed). ``lock_attempts``/``locks_confirmed``
    count per-segment steady-cycle locks, with confirmed super-period
    lengths (sweeps per machine cycle) histogrammed in
    ``super_periods``. ``commands_simulated``/``commands_replayed``
    split the periodic engine's commands into genuinely scheduled by
    the event loop vs annotated arithmetically; ``sweeps_extended``
    counts the sweeps the closed-form extension added on top of the
    warm sample. ``scheduling_paths``
    histograms :data:`~repro.dram.stats.TraceStats.scheduling_path`
    over every schedule the model ran (plus the synthetic
    ``"steady-warm"`` entry for the periodic engine's single-channel
    warm samples, which never touch the channel fan-out).
    """

    engine: str = ""
    fast_path: int = 0
    fallback: int = 0
    warm_runs: int = 0
    lock_attempts: int = 0
    locks_confirmed: int = 0
    commands_simulated: int = 0
    commands_replayed: int = 0
    sweeps_extended: int = 0
    fallback_reasons: dict = field(default_factory=dict)
    warm_widths: dict = field(default_factory=dict)
    super_periods: dict = field(default_factory=dict)
    scheduling_paths: dict = field(default_factory=dict)

    # -- recording hooks (called by the update-phase model) ------------
    def record_fast_path(self) -> None:
        self.fast_path += 1

    def record_fallback(self, reason: str) -> None:
        self.fallback += 1
        self._bump(self.fallback_reasons, reason)

    def record_warm_run(self, warm_columns: int) -> None:
        self.warm_runs += 1
        self._bump(self.warm_widths, warm_columns)

    def record_outcome(self, outcome) -> None:
        """Fold one :class:`~repro.dram.steady.PeriodicOutcome` in."""
        if outcome is None:
            return
        self.commands_simulated += outcome.simulated
        self.commands_replayed += outcome.skipped
        for lock in outcome.locks:
            self.lock_attempts += 1
            if lock is None:
                continue
            self.locks_confirmed += 1
            self._bump(self.super_periods, lock.sweeps_per_period)

    def record_extension(self, sweeps: int) -> None:
        self.sweeps_extended += sweeps

    def record_scheduling_path(self, path: str) -> None:
        self._bump(self.scheduling_paths, path or "serial")

    @staticmethod
    def _bump(table: dict, key) -> None:
        key = str(key)
        table[key] = table.get(key, 0) + 1

    # -- serde / algebra -----------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe full state (histograms copied, not aliased)."""
        out = {"engine": self.engine}
        for name in _COUNTER_FIELDS:
            out[name] = getattr(self, name)
        for name in _DICT_FIELDS:
            out[name] = dict(getattr(self, name))
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "EngineReport":
        report = cls(engine=str(data.get("engine", "")))
        for name in _COUNTER_FIELDS:
            setattr(report, name, int(data.get(name, 0)))
        for name in _DICT_FIELDS:
            setattr(report, name, dict(data.get(name, {})))
        return report

    def merge(self, other: "EngineReport") -> None:
        """Fold another report's counters into this one."""
        if not self.engine:
            self.engine = other.engine
        for name in _COUNTER_FIELDS:
            setattr(
                self, name, getattr(self, name) + getattr(other, name)
            )
        for name in _DICT_FIELDS:
            table = getattr(self, name)
            for key, value in getattr(other, name).items():
                table[key] = table.get(key, 0) + value

    @staticmethod
    def diff_dicts(
        before: Mapping, after: Mapping
    ) -> Optional[dict]:
        """``after - before`` of two :meth:`to_dict` snapshots.

        The per-job delta the pool attaches to each result. Zero
        counters and empty histograms are dropped; returns ``None``
        when nothing happened between the snapshots (e.g. every
        profile was memoized).
        """
        delta: dict = {}
        for name in _COUNTER_FIELDS:
            d = int(after.get(name, 0)) - int(before.get(name, 0))
            if d:
                delta[name] = d
        for name in _DICT_FIELDS:
            b = before.get(name, {})
            table = {
                key: value - b.get(key, 0)
                for key, value in after.get(name, {}).items()
                if value - b.get(key, 0)
            }
            if table:
                delta[name] = table
        if not delta:
            return None
        delta["engine"] = after.get("engine", "")
        return delta
