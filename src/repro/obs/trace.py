"""Span-based tracing with Chrome trace-event / Perfetto export.

A :class:`Tracer` collects :class:`Span` records — name, wall-clock
window, pid/tid, free-form args — from any thread. The module-level
:func:`span` context manager is the instrumentation API used across
the stack::

    with span("engine.schedule", engine="periodic"):
        ...

Tracing is **off by default** and the disabled path is one module
attribute check returning a shared no-op context manager, so
instrumented hot paths pay nothing measurable. :func:`enable_tracing`
installs a tracer; :meth:`Tracer.write` exports Chrome trace-event
JSON loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.

Worker processes: spans record ``os.getpid()`` at creation, so spans
shipped back from fork-pool workers (see :mod:`repro.service.pool`)
appear as separate process tracks. Workers :meth:`Tracer.drain` their
spans into the result payload; the parent :meth:`Tracer.ingest`\\ s
them.

Timestamps use :func:`time.perf_counter_ns` — on Linux a process-wide
CLOCK_MONOTONIC, shared across forked children, so parent and worker
spans share one timeline.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional

#: Path of the checked-in Chrome trace-event JSON schema (also
#: validated by CI's metrics-lint step).
CHROME_TRACE_SCHEMA_PATH = (
    Path(__file__).resolve().parent / "schemas" / "chrome_trace.schema.json"
)


@dataclass
class Span:
    """One completed span: a named [start, start+dur) window."""

    name: str
    start_ns: int
    dur_ns: int
    pid: int
    tid: int
    args: dict = field(default_factory=dict)
    cat: str = "repro"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "pid": self.pid,
            "tid": self.tid,
            "args": self.args,
            "cat": self.cat,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Span":
        return cls(
            name=str(data["name"]),
            start_ns=int(data["start_ns"]),
            dur_ns=int(data["dur_ns"]),
            pid=int(data["pid"]),
            tid=int(data["tid"]),
            args=dict(data.get("args", {})),
            cat=str(data.get("cat", "repro")),
        )

    def to_trace_event(self) -> dict:
        """Chrome trace-event ``X`` (complete) event, µs timebase."""
        event = {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": self.start_ns / 1000.0,
            "dur": self.dur_ns / 1000.0,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.args:
            event["args"] = self.args
        return event


class _LiveSpan:
    """Context manager recording one span into a tracer on exit."""

    __slots__ = ("_tracer", "_name", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def set(self, **kwargs: Any) -> None:
        """Attach additional args discovered mid-span."""
        self._args.update(kwargs)

    def __enter__(self) -> "_LiveSpan":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter_ns()
        if exc_type is not None:
            self._args["error"] = exc_type.__name__
        self._tracer.add_span(
            Span(
                name=self._name,
                start_ns=self._start,
                dur_ns=end - self._start,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=self._args,
            )
        )


class _NoopSpan:
    """Shared do-nothing span for the tracing-off path."""

    __slots__ = ()

    def set(self, **kwargs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Thread-safe span collector with Chrome trace-event export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._origin_pid = os.getpid()

    def span(self, name: str, **args: Any) -> _LiveSpan:
        """Context manager timing the enclosed block as ``name``."""
        return _LiveSpan(self, name, dict(args))

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration event (a point on the timeline)."""
        now = time.perf_counter_ns()
        self.add_span(
            Span(
                name=name,
                start_ns=now,
                dur_ns=0,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=dict(args),
            )
        )

    def add_span(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def span_names(self) -> set[str]:
        with self._lock:
            return {s.name for s in self._spans}

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- cross-process shipping ----------------------------------------
    def drain(self) -> list[dict]:
        """Remove and return all spans as JSON-safe dicts (worker side)."""
        with self._lock:
            spans, self._spans = self._spans, []
        return [s.to_dict() for s in spans]

    def ingest(self, span_dicts: Iterable[Mapping]) -> int:
        """Adopt spans shipped from another process; returns the count."""
        spans = [Span.from_dict(d) for d in span_dicts]
        with self._lock:
            self._spans.extend(spans)
        return len(spans)

    # -- export --------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        spans = self.spans()
        events = [s.to_trace_event() for s in spans]
        # Name each process track so Perfetto shows more than pids.
        for pid in sorted({s.pid for s in spans}):
            label = (
                "repro" if pid == self._origin_pid else "repro-worker"
            )
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{label} [{pid}]"},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | os.PathLike) -> Path:
        """Export the trace to ``path``; returns the resolved path."""
        out = Path(path)
        out.write_text(
            json.dumps(self.to_chrome_trace(), sort_keys=True) + "\n"
        )
        return out


# ---------------------------------------------------------------------
# Global on/off switch. One active tracer per process; the off path is
# a single attribute check.

_ACTIVE: Optional[Tracer] = None


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable_tracing() -> Optional[Tracer]:
    """Stop tracing; returns the tracer that was active, if any."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def span(name: str, **args: Any):
    """Module-level span against the active tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, **args)


def instant(name: str, **args: Any) -> None:
    """Module-level instant event against the active tracer.

    Used at recovery points (fault injected, worker respawned, cache
    entry rewritten) where the interesting fact is *that* something
    happened, not how long it took. No-op when tracing is off.
    """
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, **args)


# ---------------------------------------------------------------------
# Minimal JSON-schema validation (stdlib-only; the container has no
# jsonschema package). Supports the subset the checked-in schema uses:
# type, required, properties, items, enum, additionalProperties.


def validate_json(
    instance: Any, schema: Mapping, path: str = "$"
) -> list[str]:
    """Validate ``instance`` against a JSON-schema subset.

    Returns a list of human-readable errors (empty = valid).
    """
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        checkers = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            "integer": lambda v: isinstance(v, int)
            and not isinstance(v, bool),
            "number": lambda v: isinstance(v, (int, float))
            and not isinstance(v, bool),
            "boolean": lambda v: isinstance(v, bool),
            "null": lambda v: v is None,
        }
        types = expected if isinstance(expected, list) else [expected]
        if not any(checkers[t](instance) for t in types):
            errors.append(
                f"{path}: expected type {expected}, "
                f"got {type(instance).__name__}"
            )
            return errors
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(
            f"{path}: {instance!r} not in enum {schema['enum']}"
        )
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, value in instance.items():
            if key in properties:
                errors.extend(
                    validate_json(
                        value, properties[key], f"{path}.{key}"
                    )
                )
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(
                validate_json(item, schema["items"], f"{path}[{i}]")
            )
    return errors


def validate_chrome_trace(trace: Mapping) -> list[str]:
    """Validate a trace object against the checked-in schema."""
    schema = json.loads(CHROME_TRACE_SCHEMA_PATH.read_text())
    return validate_json(trace, schema)
