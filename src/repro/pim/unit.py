"""Functional model of one GradPIM unit (paper Fig. 4, Table III).

The unit executes the operational semantics of §IV-B on 64-byte column
payloads:

* **scaled read** — a column arrives from a bank through the scaler and
  lands in a temporary register;
* **parallel add/sub** — element-wise combine of the two temporary
  registers into one of them;
* **quantize / dequantize** — convert between a high-precision temporary
  register and one position of the quantization register;
* **writeback / qreg transfers** — move register payloads back to banks.

Element interpretation (float32 master weights with int8/int16 codes, or
int32 fixed point) is supplied per kernel by a :class:`QuantSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.pim.quant import QuantSpec
from repro.pim.registers import RegisterFile, REGISTER_BYTES
from repro.pim.scaler import ScalerTable, ScalerValue


@dataclass(frozen=True)
class LayoutEntry:
    """One row of the paper's Table III (45 nm layout scaled to 32 nm)."""

    module: str
    area_um2: float
    power_mw: float


#: Paper Table III: per-module layout results of the GradPIM unit.
PIM_LAYOUT: tuple[LayoutEntry, ...] = (
    LayoutEntry("Adder", 320.1, 0.058),
    LayoutEntry("Quantize", 275.4, 0.056),
    LayoutEntry("Dequantize", 244.8, 0.041),
    LayoutEntry("Scaler", 606.1, 0.159),
    LayoutEntry("Registers (x3)", 206.7, 0.040),
)

#: Paper Table III totals (the total row includes wiring overhead the
#: per-module rows do not sum to).
PIM_LAYOUT_TOTAL = LayoutEntry("Total", 8267.8, 1.74)

#: DRAM area of an x8 8Gb DDR4 device that the unit overhead is quoted
#: against: 0.01 % (paper §VI-A).
PIM_AREA_OVERHEAD_FRACTION = 0.0001


class GradPIMUnit:
    """One bank group's GradPIM logic: registers + scaler + ALU."""

    def __init__(self, quant: QuantSpec | None = None) -> None:
        self.regs = RegisterFile()
        self.scalers = ScalerTable()
        self.quant = quant if quant is not None else QuantSpec()

    # ------------------------------------------------------------------
    # Column-access side (bank <-> registers)
    # ------------------------------------------------------------------
    def scaled_read(
        self, column: np.ndarray, scale_id: int, dst_reg: int
    ) -> None:
        """Load a 64 B column into ``dst_reg`` through the scaler."""
        payload = _as_column(column)
        scaler = self.scalers[scale_id]
        if scaler != ScalerValue.identity():
            lanes = payload.view(self.quant.hp_dtype)
            payload = scaler.apply(lanes).view(np.uint8)
        self.regs.write_temp(dst_reg, payload)

    def writeback(self, src_reg: int) -> np.ndarray:
        """Drain a temporary register toward a bank column."""
        return self.regs.read_temp(src_reg)

    def qreg_load(self, column: np.ndarray) -> None:
        """Fill the quantization register from a bank column."""
        self.regs.write_quant(_as_column(column))

    def qreg_store(self) -> np.ndarray:
        """Drain the quantization register toward a bank column."""
        return self.regs.read_quant()

    # ------------------------------------------------------------------
    # Parallel-ALU side (register <-> register)
    # ------------------------------------------------------------------
    def parallel_add(self, dst_reg: int) -> None:
        """dst = temp0 + temp1, element-wise in the hp dtype."""
        self._combine(dst_reg, subtract=False)

    def parallel_sub(self, dst_reg: int) -> None:
        """dst = temp0 - temp1 (dst 0) or temp1 - temp0 (dst 1).

        The ALU always subtracts *the other* register from the
        destination's current value, mirroring two-operand hardware.
        """
        self._combine(dst_reg, subtract=True)

    def _combine(self, dst_reg: int, subtract: bool) -> None:
        dtype = self.quant.hp_dtype
        a = self.regs.read_temp(dst_reg).view(dtype)
        b = self.regs.read_temp(1 - dst_reg).view(dtype)
        out = (a - b) if subtract else (a + b)
        self.regs.write_temp(dst_reg, out.astype(dtype).view(np.uint8))

    def parallel_mul(self, dst_reg: int) -> None:
        """dst = temp0 * temp1 — extended-ALU operation (paper §VIII)."""
        dtype = self.quant.hp_dtype
        a = self.regs.read_temp(dst_reg).view(dtype)
        b = self.regs.read_temp(1 - dst_reg).view(dtype)
        self.regs.write_temp(
            dst_reg, (a * b).astype(dtype).view(np.uint8)
        )

    def parallel_rsqrt(self, dst_reg: int, epsilon: float) -> None:
        """dst = 1/sqrt(dst + epsilon) — extended-ALU operation (§VIII).

        ``epsilon`` is an MRW-programmable constant, like the scaler
        slots; it keeps the operation defined at zero.
        """
        dtype = self.quant.hp_dtype
        x = self.regs.read_temp(dst_reg).view(dtype).astype(np.float64)
        with np.errstate(divide="ignore"):
            out = 1.0 / np.sqrt(x + epsilon)
        self.regs.write_temp(dst_reg, out.astype(dtype).view(np.uint8))

    def quantize(self, src_reg: int, position: int) -> None:
        """Quantize a hp temporary register into one qreg position."""
        lanes = self.regs.read_temp(src_reg).view(self.quant.hp_dtype)
        codes = self.quant.quantize(lanes)
        self.regs.write_quant_slice(
            position, self.quant.ratio, codes.view(np.uint8)
        )

    def dequantize(self, position: int, dst_reg: int) -> None:
        """Dequantize one qreg position into a hp temporary register."""
        codes_bytes = self.regs.read_quant_slice(position, self.quant.ratio)
        codes = codes_bytes.view(self.quant.lp_dtype)
        values = self.quant.dequantize(codes)
        self.regs.write_temp(dst_reg, values.view(np.uint8))


def _as_column(column: np.ndarray) -> np.ndarray:
    column = np.asarray(column, dtype=np.uint8)
    if column.shape != (REGISTER_BYTES,):
        raise SimulationError(
            f"column payload must be {REGISTER_BYTES} bytes, "
            f"got {column.shape}"
        )
    return column
