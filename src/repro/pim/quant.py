"""Quantization semantics for mixed-precision training (paper §IV-D).

GradPIM converts between a high-precision master representation (what
the optimizer updates, stored across full columns) and a low-precision
representation (what the NPU reads/writes during forward/backward).

The hardware datapath is a shifter + rounder, so the quantization step
size is a power of two: ``Q(x) = clip(round(x / 2^e))`` into a signed
``lp_bits`` integer, and ``DQ(q) = q * 2^e``. Both directions are exact,
deterministic operations, which lets the test suite compare compiled
PIM kernels bit-for-bit against numpy references.

Supported high-precision element types:

* ``float32`` / ``float16`` — master weights as IEEE floats (the default,
  matching mixed-precision training practice);
* ``int32`` fixed point — a hardware-exact mode where the ALU is a plain
  integer adder; the quantization exponent then counts fractional bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

_HP_DTYPES = {32: np.float32, 16: np.float16}
_LP_DTYPES = {8: np.int8, 16: np.int16}


@dataclass(frozen=True)
class QuantSpec:
    """Quantization geometry and arithmetic for one precision mix.

    ``exponent`` is the power-of-two step size ``2^exponent`` of the
    low-precision grid.
    """

    hp_bits: int = 32
    lp_bits: int = 8
    exponent: int = -6

    def __post_init__(self) -> None:
        if self.hp_bits not in _HP_DTYPES:
            raise ConfigError(f"unsupported hp_bits {self.hp_bits}")
        if self.lp_bits not in _LP_DTYPES:
            raise ConfigError(f"unsupported lp_bits {self.lp_bits}")
        if self.lp_bits >= self.hp_bits:
            raise ConfigError(
                "low precision must be narrower than high precision, got "
                f"{self.lp_bits}/{self.hp_bits}"
            )

    # ------------------------------------------------------------------
    @property
    def hp_dtype(self) -> np.dtype:
        """Numpy dtype of the high-precision representation."""
        return np.dtype(_HP_DTYPES[self.hp_bits])

    @property
    def lp_dtype(self) -> np.dtype:
        """Numpy dtype of the low-precision representation."""
        return np.dtype(_LP_DTYPES[self.lp_bits])

    @property
    def ratio(self) -> int:
        """How many low-precision columns pack into one hp column.

        This is also the number of quant-register "positions": 4 for
        8/32-bit mixing, 2 for 16/32 and 8/16 (paper §IV-D supports up
        to four).
        """
        return self.hp_bits // self.lp_bits

    @property
    def step(self) -> float:
        """The quantization step ``2^exponent``."""
        return float(np.ldexp(1.0, self.exponent))

    @property
    def qmin(self) -> int:
        """Smallest representable code."""
        return -(1 << (self.lp_bits - 1))

    @property
    def qmax(self) -> int:
        """Largest representable code."""
        return (1 << (self.lp_bits - 1)) - 1

    # ------------------------------------------------------------------
    def quantize(self, x: np.ndarray) -> np.ndarray:
        """High-precision array -> low-precision codes.

        Round-half-to-even (the IEEE default, what a hardware rounder
        produces from the truncated guard/round/sticky path) then
        saturate.
        """
        scaled = np.asarray(x, dtype=np.float64) / self.step
        codes = np.rint(scaled)
        return np.clip(codes, self.qmin, self.qmax).astype(self.lp_dtype)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        """Low-precision codes -> high-precision array."""
        return (np.asarray(q, dtype=np.float64) * self.step).astype(
            self.hp_dtype
        )

    def roundtrip_error_bound(self) -> float:
        """Worst-case |x - DQ(Q(x))| for in-range x: half a step."""
        return self.step / 2.0

    def representable_range(self) -> tuple[float, float]:
        """(lo, hi) values representable without saturation."""
        return (self.qmin * self.step, self.qmax * self.step)
