"""The GradPIM scaler: hyperparameters approximated as ``±(2^n ± 2^m)``.

"To simplify the scaler, we approximate the scaler values in 2^n ± 2^m
and implement the scaler with shifters and adders. The values of n and m
assigned to each opcode can be programmed with MRW" (paper §IV-B). A
scaled read applies one of four pinned scaler values, selected by the
2-bit scale id of the command (Table I).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError

#: Exponent range reachable by the hardware shifters.
MIN_EXP = -31
MAX_EXP = 15


@dataclass(frozen=True)
class ScalerValue:
    """One programmed scaler constant ``sign * (2^n + term * 2^m)``.

    ``term`` is +1, -1, or 0 (0 means a pure power of two, i.e. the
    second shifter is disabled).
    """

    sign: int
    n: int
    term: int = 0
    m: int = 0

    def __post_init__(self) -> None:
        if self.sign not in (-1, 1):
            raise ConfigError(f"sign must be +-1, got {self.sign}")
        if self.term not in (-1, 0, 1):
            raise ConfigError(f"term must be -1, 0, or 1, got {self.term}")
        if not MIN_EXP <= self.n <= MAX_EXP:
            raise ConfigError(f"n={self.n} outside shifter range")
        if self.term != 0 and not MIN_EXP <= self.m <= MAX_EXP:
            raise ConfigError(f"m={self.m} outside shifter range")
        if self.term != 0 and self.m >= self.n:
            raise ConfigError(
                "m must be strictly below n so 2^n dominates "
                f"(n={self.n}, m={self.m})"
            )

    @property
    def value(self) -> float:
        """Exact float value of the programmed constant.

        Sums of two powers of two are exactly representable in float64
        (and in float32 for the exponent range used here), so functional
        simulation with this value is bit-deterministic.
        """
        v = math.ldexp(1.0, self.n)
        if self.term:
            v += self.term * math.ldexp(1.0, self.m)
        return self.sign * v

    @classmethod
    def identity(cls) -> "ScalerValue":
        """The scale applied by scale id 0: exactly 1.0."""
        return cls(sign=1, n=0)

    @classmethod
    def approximate(cls, target: float) -> "ScalerValue":
        """Best hardware-reachable approximation of ``target``.

        Considers every ``±2^n`` and ``±(2^n ± 2^m)`` combination whose
        leading power can possibly be closest to ``target`` (n within
        one of floor(log2 |target|), plus the range boundaries) and
        returns the one minimizing the relative error. Exact zero is
        not representable (the hardware always shifts something);
        requesting 0 is a configuration error. Results are memoized:
        learning-rate schedules approximate thousands of values.
        """
        if target == 0.0:
            raise ConfigError("scaler cannot represent exact zero")
        return _approximate_cached(float(target))

    @classmethod
    def _approximate_uncached(cls, target: float) -> "ScalerValue":
        sign = 1 if target > 0 else -1
        magnitude = abs(target)
        k = math.floor(math.log2(magnitude))
        exponents = {
            min(max(n, MIN_EXP), MAX_EXP) for n in (k - 1, k, k + 1)
        }
        exponents.update((MIN_EXP, MAX_EXP))
        best: Optional[ScalerValue] = None
        best_err = math.inf
        for n in sorted(exponents):
            candidates = [cls(sign=sign, n=n)]
            for m in range(MIN_EXP, n):
                candidates.append(cls(sign=sign, n=n, term=1, m=m))
                candidates.append(cls(sign=sign, n=n, term=-1, m=m))
            for cand in candidates:
                err = abs(abs(cand.value) - magnitude) / magnitude
                if err < best_err:
                    best, best_err = cand, err
        assert best is not None
        return best

    def relative_error(self, target: float) -> float:
        """Relative error of this constant against ``target``."""
        if target == 0.0:
            raise ConfigError("relative error against zero is undefined")
        return abs(self.value - target) / abs(target)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Scale an array, preserving its dtype.

        Floating-point lanes multiply by the exact constant; integer
        (fixed-point) lanes use the shift-and-add datapath the hardware
        implements.
        """
        if np.issubdtype(x.dtype, np.floating):
            return (x * x.dtype.type(self.value)).astype(x.dtype)
        # Fixed-point: x * 2^n computed as shifts on widened values.
        wide = x.astype(np.int64)
        out = _shift(wide, self.n)
        if self.term:
            out = out + self.term * _shift(wide, self.m)
        out = self.sign * out
        info = np.iinfo(x.dtype)
        return np.clip(out, info.min, info.max).astype(x.dtype)


@functools.lru_cache(maxsize=65536)
def _approximate_cached(target: float) -> ScalerValue:
    return ScalerValue._approximate_uncached(target)


def _shift(x: np.ndarray, exponent: int) -> np.ndarray:
    """Arithmetic shift by a possibly negative exponent."""
    if exponent >= 0:
        return x << exponent
    return x >> (-exponent)


class ScalerTable:
    """The four MRW-programmable scaler slots of one GradPIM unit.

    Slot 0 is pinned to the identity so a plain (unscaled) load is always
    available; slots 1-3 hold η, α, ηβ (or whatever the optimizer kernel
    programs).
    """

    SLOTS = 4

    def __init__(self) -> None:
        self._slots: list[ScalerValue] = [
            ScalerValue.identity() for _ in range(self.SLOTS)
        ]

    def program(self, slot: int, value: ScalerValue) -> None:
        """Program one slot (the MRW command of §IV-B)."""
        if not 0 <= slot < self.SLOTS:
            raise ConfigError(f"scale slot {slot} out of range")
        if slot == 0 and value != ScalerValue.identity():
            raise ConfigError("slot 0 is reserved for the identity scale")
        self._slots[slot] = value

    def __getitem__(self, slot: int) -> ScalerValue:
        if not 0 <= slot < self.SLOTS:
            raise ConfigError(f"scale slot {slot} out of range")
        return self._slots[slot]

    def values(self) -> tuple[ScalerValue, ...]:
        """The current contents of all slots."""
        return tuple(self._slots)
