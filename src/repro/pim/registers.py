"""GradPIM register file: two temporaries plus one quantization register.

Registers are 64 bytes wide — "the same width of the global sense
amplifiers (i.e., 64 Bytes in total for a rank)" (paper §IV-A). The
quantization register is dedicated to low-precision values because they
"stay longer (four times for 8-bit quantization) in the register",
simplifying the control path (§IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.dram.commands import QUANT_REG
from repro.errors import ConfigError, SimulationError

#: Width of every register, bytes.
REGISTER_BYTES = 64

#: Number of temporary registers per unit.
NUM_TEMP_REGS = 2


class RegisterFile:
    """Byte-level storage of one GradPIM unit's registers."""

    def __init__(self) -> None:
        self._temps = [
            np.zeros(REGISTER_BYTES, dtype=np.uint8)
            for _ in range(NUM_TEMP_REGS)
        ]
        self._quant = np.zeros(REGISTER_BYTES, dtype=np.uint8)
        self._temp_valid = [False] * NUM_TEMP_REGS
        self._quant_valid = np.zeros(REGISTER_BYTES, dtype=bool)

    # ------------------------------------------------------------------
    def write_temp(self, reg: int, data: np.ndarray) -> None:
        """Fill a temporary register with 64 bytes."""
        self._check_temp(reg)
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (REGISTER_BYTES,):
            raise SimulationError(
                f"register write needs {REGISTER_BYTES} bytes, "
                f"got shape {data.shape}"
            )
        self._temps[reg][:] = data
        self._temp_valid[reg] = True

    def read_temp(self, reg: int) -> np.ndarray:
        """Read a temporary register's 64 bytes (copy)."""
        self._check_temp(reg)
        if not self._temp_valid[reg]:
            raise SimulationError(
                f"read of temporary register {reg} before any write"
            )
        return self._temps[reg].copy()

    def temp_written(self, reg: int) -> bool:
        """True once the register holds defined data."""
        self._check_temp(reg)
        return self._temp_valid[reg]

    # ------------------------------------------------------------------
    def write_quant(self, data: np.ndarray) -> None:
        """Fill the whole quantization register (a QREG_LOAD)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (REGISTER_BYTES,):
            raise SimulationError(
                f"quant register write needs {REGISTER_BYTES} bytes"
            )
        self._quant[:] = data
        self._quant_valid[:] = True

    def write_quant_slice(
        self, position: int, positions: int, data: np.ndarray
    ) -> None:
        """Fill one of ``positions`` equal slices (a PIM_QUANT result)."""
        lo, hi = self._slice_bounds(position, positions)
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (hi - lo,):
            raise SimulationError(
                f"quant slice needs {hi - lo} bytes, got {data.shape}"
            )
        self._quant[lo:hi] = data
        self._quant_valid[lo:hi] = True

    def read_quant(self) -> np.ndarray:
        """Read the whole quantization register (a QREG_STORE source)."""
        if not self._quant_valid.all():
            raise SimulationError(
                "quant register stored before all positions were filled"
            )
        return self._quant.copy()

    def read_quant_slice(self, position: int, positions: int) -> np.ndarray:
        """Read one slice (a PIM_DEQUANT source)."""
        lo, hi = self._slice_bounds(position, positions)
        if not self._quant_valid[lo:hi].all():
            raise SimulationError(
                f"dequantize of unwritten quant-register position {position}"
            )
        return self._quant[lo:hi].copy()

    # ------------------------------------------------------------------
    @staticmethod
    def _slice_bounds(position: int, positions: int) -> tuple[int, int]:
        if positions not in (1, 2, 4):
            raise ConfigError(f"positions must be 1, 2 or 4, got {positions}")
        if not 0 <= position < positions:
            raise SimulationError(
                f"position {position} out of range for {positions} slices"
            )
        width = REGISTER_BYTES // positions
        return position * width, (position + 1) * width

    @staticmethod
    def _check_temp(reg: int) -> None:
        if reg == QUANT_REG:
            raise SimulationError(
                "quantization register accessed through temporary-register "
                "port"
            )
        if not 0 <= reg < NUM_TEMP_REGS:
            raise SimulationError(f"temporary register {reg} out of range")
