"""GradPIM command encoding over the DDR4 RFU signals (paper Table I).

The DDR4 standard leaves five configurable command signals for RFU
operations once bank-group/bank/row/column addresses are accounted for
(A12/BC_n, A17, A13, A11, A10/AP — paper footnote 2). GradPIM packs its
opcode and operands into those five bits:

======  ====  ====  ======  ======  =======
Func    Op0   Op1   Param0  Param1  Src/Dst
======  ====  ====  ======  ======  =======
Scaled  L     L     scale id (2b)    dst
DeQuant H     L     position (2b)    dst
Quant   H     H     position (2b)    src
Wrback  L     H     L       L        src
Q. Reg  L     H     H       L        rd/wr
Add     L     H     H       H        dst
Sub     L     H     L       H        dst
======  ====  ====  ======  ======  =======

The Q. Reg command's rd/wr bit selects direction: ``wr`` fills the
quantization register from a bank column (:data:`CommandType.QREG_LOAD`),
``rd`` drains it into a bank column (:data:`CommandType.QREG_STORE`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.commands import Command, CommandType, QUANT_REG
from repro.errors import IsaError

#: Bit positions within the 5-bit RFU field, MSB first.
_OP0, _OP1, _P0, _P1, _SD = 4, 3, 2, 1, 0

#: Command kinds that have a Table I encoding.
ENCODABLE = frozenset(
    {
        CommandType.SCALED_READ,
        CommandType.PIM_DEQUANT,
        CommandType.PIM_QUANT,
        CommandType.WRITEBACK,
        CommandType.QREG_LOAD,
        CommandType.QREG_STORE,
        CommandType.PIM_ADD,
        CommandType.PIM_SUB,
    }
)


@dataclass(frozen=True)
class EncodedCommand:
    """A decoded RFU field: kind plus operand values."""

    kind: CommandType
    scale_id: int = 0
    position: int = 0
    reg: int = 0  # dst for reads/ALU, src for quant/writeback


def _bit(value: int, position: int) -> int:
    return (value >> position) & 1


def encode_command(cmd: Command) -> int:
    """Pack a GradPIM command's opcode/operands into the 5 RFU bits."""
    k = cmd.kind
    if k not in ENCODABLE:
        raise IsaError(f"{k.value} has no RFU encoding")
    if k is CommandType.SCALED_READ:
        if not 0 <= cmd.scale_id < 4:
            raise IsaError(f"scale id {cmd.scale_id} out of range")
        return (
            (cmd.scale_id << _P1) | (_reg_bit(cmd.dst_reg) << _SD)
        )  # Op = LL
    if k is CommandType.PIM_DEQUANT:
        _check_position(cmd.position)
        return (
            (1 << _OP0)
            | (cmd.position << _P1)
            | (_reg_bit(cmd.dst_reg) << _SD)
        )
    if k is CommandType.PIM_QUANT:
        _check_position(cmd.position)
        return (
            (1 << _OP0)
            | (1 << _OP1)
            | (cmd.position << _P1)
            | (_reg_bit(cmd.src_reg) << _SD)
        )
    if k is CommandType.WRITEBACK:
        if cmd.src_reg == QUANT_REG:
            # Draining the quantization register is the Q.Reg rd form.
            return (1 << _OP1) | (1 << _P0) | (0 << _P1) | (0 << _SD)
        return (1 << _OP1) | (_reg_bit(cmd.src_reg) << _SD)
    if k is CommandType.QREG_STORE:
        return (1 << _OP1) | (1 << _P0) | (0 << _SD)
    if k is CommandType.QREG_LOAD:
        return (1 << _OP1) | (1 << _P0) | (1 << _SD)
    if k is CommandType.PIM_ADD:
        return (
            (1 << _OP1)
            | (1 << _P0)
            | (1 << _P1)
            | (_reg_bit(cmd.dst_reg) << _SD)
        )
    if k is CommandType.PIM_SUB:
        return (
            (1 << _OP1) | (1 << _P1) | (_reg_bit(cmd.dst_reg) << _SD)
        )
    raise IsaError(f"unhandled kind {k.value}")  # pragma: no cover


def decode_command(bits: int) -> EncodedCommand:
    """Unpack a 5-bit RFU field back into kind and operands."""
    if not 0 <= bits < 32:
        raise IsaError(f"RFU field must be 5 bits, got {bits:#x}")
    op0, op1 = _bit(bits, _OP0), _bit(bits, _OP1)
    p0, p1, sd = _bit(bits, _P0), _bit(bits, _P1), _bit(bits, _SD)
    if op0 == 0 and op1 == 0:
        return EncodedCommand(
            kind=CommandType.SCALED_READ,
            scale_id=(p0 << 1) | p1,
            reg=sd,
        )
    if op0 == 1 and op1 == 0:
        return EncodedCommand(
            kind=CommandType.PIM_DEQUANT, position=(p0 << 1) | p1, reg=sd
        )
    if op0 == 1 and op1 == 1:
        return EncodedCommand(
            kind=CommandType.PIM_QUANT, position=(p0 << 1) | p1, reg=sd
        )
    # op0 == 0, op1 == 1: the four L-H functions.
    if p0 == 0 and p1 == 0:
        return EncodedCommand(kind=CommandType.WRITEBACK, reg=sd)
    if p0 == 1 and p1 == 0:
        kind = CommandType.QREG_LOAD if sd else CommandType.QREG_STORE
        return EncodedCommand(kind=kind, reg=QUANT_REG)
    if p0 == 1 and p1 == 1:
        return EncodedCommand(kind=CommandType.PIM_ADD, reg=sd)
    return EncodedCommand(kind=CommandType.PIM_SUB, reg=sd)


#: Extended encodings occupy a sixth command signal (paper §IV-E: "we can
#: add an extra command signal or occupy unused command combinations").
#: Bit 5 set marks the extension space.
_EXT = 5

EXTENDED = frozenset({CommandType.PIM_MUL, CommandType.PIM_RSQRT})


def encode_extended(cmd: Command) -> int:
    """Encode a §VIII extended-ALU command into the 6-bit space."""
    if cmd.kind is CommandType.PIM_MUL:
        return (1 << _EXT) | (_reg_bit(cmd.dst_reg) << _SD)
    if cmd.kind is CommandType.PIM_RSQRT:
        return (1 << _EXT) | (1 << _P1) | (_reg_bit(cmd.dst_reg) << _SD)
    raise IsaError(f"{cmd.kind.value} is not an extended-ALU command")


def decode_extended(bits: int) -> EncodedCommand:
    """Decode a 6-bit extended field back into kind and operands."""
    if not _bit(bits, _EXT):
        raise IsaError("not an extended encoding (bit 5 clear)")
    sd = _bit(bits, _SD)
    if _bit(bits, _P1):
        return EncodedCommand(kind=CommandType.PIM_RSQRT, reg=sd)
    return EncodedCommand(kind=CommandType.PIM_MUL, reg=sd)


def _reg_bit(reg: int) -> int:
    if reg not in (0, 1):
        raise IsaError(f"temporary register id must be 0 or 1, got {reg}")
    return reg


def _check_position(position: int) -> None:
    if not 0 <= position < 4:
        raise IsaError(f"quant position {position} out of range")
