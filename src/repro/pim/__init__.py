"""GradPIM unit: functional model of the in-DRAM update logic.

One GradPIM unit sits at each bank group's I/O gating (paper Fig. 4) and
contains:

* two 64-byte **temporary registers** (operand/result staging),
* one 64-byte **quantization register** (low-precision staging),
* a **scaler** approximating hyperparameters as ``±(2^n ± 2^m)``,
* a **parallel ALU** doing element-wise add/sub/quantize/dequantize.

This subpackage provides bit-exact functional semantics for those
components plus the Table I command encoding and a byte-level functional
DRAM used to verify compiled kernels against numpy optimizer references.
"""

from repro.pim.scaler import ScalerValue, ScalerTable
from repro.pim.quant import QuantSpec
from repro.pim.registers import RegisterFile
from repro.pim.unit import GradPIMUnit, PIM_LAYOUT, LayoutEntry
from repro.pim.isa import encode_command, decode_command, EncodedCommand
from repro.pim.functional import FunctionalDRAM, FunctionalExecutor

__all__ = [
    "ScalerValue",
    "ScalerTable",
    "QuantSpec",
    "RegisterFile",
    "GradPIMUnit",
    "PIM_LAYOUT",
    "LayoutEntry",
    "encode_command",
    "decode_command",
    "EncodedCommand",
    "FunctionalDRAM",
    "FunctionalExecutor",
]
