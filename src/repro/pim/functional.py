"""Byte-level functional DRAM and a command-stream executor.

These two classes give the reproduction its ground truth: a compiled
GradPIM kernel is *executed* — every scaled read, ALU op, and writeback
actually moves bytes — and the resulting parameter arrays are compared
against numpy optimizer references by the test suite.

Functional execution is deliberately independent of timing: it runs the
stream in program order (which the dependency edges make equivalent to
any legal schedule) so a timing bug cannot mask a semantics bug and vice
versa.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dram.address import AddressMapping
from repro.dram.commands import Command, CommandType, QUANT_REG
from repro.dram.geometry import DeviceGeometry, DEFAULT_GEOMETRY
from repro.errors import SimulationError
from repro.pim.quant import QuantSpec
from repro.pim.unit import GradPIMUnit


class FunctionalDRAM:
    """Sparse byte store addressed by (rank, bankgroup, bank, row, col)."""

    def __init__(self, geometry: DeviceGeometry = DEFAULT_GEOMETRY) -> None:
        self.geometry = geometry
        self.mapping = AddressMapping(geometry)
        self._columns: dict[tuple[int, int, int, int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def read_column(
        self, rank: int, bankgroup: int, bank: int, row: int, col: int
    ) -> np.ndarray:
        """Read one 64 B column (zeros if never written)."""
        key = (rank, bankgroup, bank, row, col)
        data = self._columns.get(key)
        if data is None:
            return np.zeros(self.geometry.column_bytes, dtype=np.uint8)
        return data.copy()

    def write_column(
        self,
        rank: int,
        bankgroup: int,
        bank: int,
        row: int,
        col: int,
        data: np.ndarray,
    ) -> None:
        """Write one 64 B column."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.geometry.column_bytes,):
            raise SimulationError(
                f"column write needs {self.geometry.column_bytes} bytes"
            )
        self._columns[(rank, bankgroup, bank, row, col)] = data.copy()

    # ------------------------------------------------------------------
    def store_array(self, bank: int, array: np.ndarray, base: int = 0) -> None:
        """Store a flat array into bank-aligned space (Fig. 7 placement).

        ``base`` is a byte offset inside the bank's region; it must be
        column aligned so elements never straddle column boundaries.
        """
        cb = self.geometry.column_bytes
        if base % cb != 0:
            raise SimulationError("array base must be column aligned")
        raw = np.ascontiguousarray(array).view(np.uint8).ravel()
        padded_len = -(-len(raw) // cb) * cb
        padded = np.zeros(padded_len, dtype=np.uint8)
        padded[: len(raw)] = raw
        for i in range(0, padded_len, cb):
            coords = self.mapping.element_coords(bank, base + i)
            self.write_column(
                coords.rank,
                coords.bankgroup,
                coords.bank,
                coords.row,
                coords.col,
                padded[i : i + cb],
            )

    def load_array(
        self, bank: int, dtype: np.dtype, count: int, base: int = 0
    ) -> np.ndarray:
        """Read back ``count`` elements of ``dtype`` from bank space."""
        cb = self.geometry.column_bytes
        if base % cb != 0:
            raise SimulationError("array base must be column aligned")
        nbytes = count * np.dtype(dtype).itemsize
        padded_len = -(-nbytes // cb) * cb
        out = np.zeros(padded_len, dtype=np.uint8)
        for i in range(0, padded_len, cb):
            coords = self.mapping.element_coords(bank, base + i)
            out[i : i + cb] = self.read_column(
                coords.rank,
                coords.bankgroup,
                coords.bank,
                coords.row,
                coords.col,
            )
        return out[:nbytes].view(dtype).copy()


class FunctionalExecutor:
    """Executes a GradPIM command stream against a :class:`FunctionalDRAM`.

    One :class:`GradPIMUnit` is instantiated per bank group (or per bank
    with ``per_bank_pim``, the AoS-PB configuration).
    """

    def __init__(
        self,
        dram: FunctionalDRAM,
        quant: QuantSpec | None = None,
        per_bank_pim: bool = False,
        rsqrt_epsilon: float = 1e-8,
    ) -> None:
        self.dram = dram
        self.quant = quant if quant is not None else QuantSpec()
        self.per_bank_pim = per_bank_pim
        self.rsqrt_epsilon = rsqrt_epsilon
        self._units: dict[tuple[int, int, int], GradPIMUnit] = {}

    # ------------------------------------------------------------------
    def unit_for(self, rank: int, bankgroup: int, bank: int) -> GradPIMUnit:
        """The GradPIM unit serving a (rank, bankgroup[, bank])."""
        key = (rank, bankgroup, bank if self.per_bank_pim else -1)
        unit = self._units.get(key)
        if unit is None:
            unit = GradPIMUnit(self.quant)
            self._units[key] = unit
        return unit

    def program_scaler(self, slot: int, value) -> None:
        """Program a scaler slot on every unit (the broadcast MRW)."""
        geom = self.dram.geometry
        banks = geom.banks_per_group if self.per_bank_pim else 1
        for rank in range(geom.ranks):
            for bg in range(geom.bankgroups):
                for bank in range(banks):
                    self.unit_for(rank, bg, bank).scalers.program(slot, value)

    # ------------------------------------------------------------------
    def execute(self, commands: Sequence[Command]) -> None:
        """Run a stream in program order, moving real bytes."""
        for cmd in commands:
            self._execute_one(cmd)

    def _execute_one(self, cmd: Command) -> None:
        kind = cmd.kind
        if kind in (CommandType.ACT, CommandType.PRE, CommandType.REF):
            return
        if kind is CommandType.MRW:
            # Programs one scaler slot on every unit of the rank.
            geom = self.dram.geometry
            banks = geom.banks_per_group if self.per_bank_pim else 1
            for bg in range(geom.bankgroups):
                for bank in range(banks):
                    self.unit_for(cmd.rank, bg, bank).scalers.program(
                        cmd.scale_id, cmd.scaler
                    )
            return
        unit = self.unit_for(cmd.rank, cmd.bankgroup, cmd.bank)
        dram = self.dram
        where = (cmd.rank, cmd.bankgroup, cmd.bank, cmd.row, cmd.col)
        if kind is CommandType.SCALED_READ:
            column = dram.read_column(*where)
            unit.scaled_read(column, cmd.scale_id, cmd.dst_reg)
        elif kind is CommandType.WRITEBACK:
            if cmd.src_reg == QUANT_REG:
                dram.write_column(*where, unit.qreg_store())
            else:
                dram.write_column(*where, unit.writeback(cmd.src_reg))
        elif kind is CommandType.QREG_LOAD:
            unit.qreg_load(dram.read_column(*where))
        elif kind is CommandType.QREG_STORE:
            dram.write_column(*where, unit.qreg_store())
        elif kind is CommandType.PIM_ADD:
            unit.parallel_add(cmd.dst_reg)
        elif kind is CommandType.PIM_SUB:
            unit.parallel_sub(cmd.dst_reg)
        elif kind is CommandType.PIM_MUL:
            unit.parallel_mul(cmd.dst_reg)
        elif kind is CommandType.PIM_RSQRT:
            unit.parallel_rsqrt(cmd.dst_reg, self.rsqrt_epsilon)
        elif kind is CommandType.PIM_QUANT:
            unit.quantize(cmd.src_reg, cmd.position)
        elif kind is CommandType.PIM_DEQUANT:
            unit.dequantize(cmd.position, cmd.dst_reg)
        elif kind in (CommandType.RD, CommandType.WR):
            # Host-side accesses move data the executor does not model
            # (the NPU owns that data); nothing to do functionally.
            return
        else:  # pragma: no cover - vocabulary is closed
            raise SimulationError(f"cannot execute {kind.value}")
