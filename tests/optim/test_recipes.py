"""Recipe-DSL tests: structure, validation, interpretation."""

import numpy as np
import pytest

from repro.errors import CompileError, ConfigError
from repro.optim.base import (
    Lincomb,
    Mul,
    RsqrtMul,
    Term,
    UpdatePass,
    UpdateRecipe,
    approximate_coefficients,
    interpret_recipe,
)


def _simple_recipe():
    return UpdateRecipe(
        passes=(
            UpdatePass(
                ops=(
                    Lincomb(
                        "theta",
                        (Term(1.0, "theta"), Term(-0.01, "grad")),
                    ),
                ),
                inputs=frozenset({"theta", "grad"}),
                outputs=frozenset({"theta"}),
            ),
        )
    )


class TestStructure:
    def test_term_rejects_zero_coefficient(self):
        with pytest.raises(ConfigError):
            Term(0.0, "grad")

    def test_lincomb_requires_terms(self):
        with pytest.raises(ConfigError):
            Lincomb("x", ())

    def test_lincomb_accessors(self):
        op = Lincomb("v", (Term(0.9, "v"), Term(-0.01, "g")))
        assert op.sources() == ("v", "g")
        assert op.coefficients() == (0.9, -0.01)

    def test_mul_accessors(self):
        op = Mul("gg", Term(0.5, "g"), "g")
        assert op.sources() == ("g", "g")
        assert op.coefficients() == (0.5,)

    def test_rsqrt_has_no_coefficients(self):
        op = RsqrtMul("u", "m", "v")
        assert op.coefficients() == ()

    def test_recipe_coefficients_deduplicated(self):
        recipe = UpdateRecipe(
            passes=(
                UpdatePass(
                    ops=(
                        Lincomb("a", (Term(0.9, "a"), Term(0.9, "b"))),
                        Lincomb("b", (Term(-0.5, "a"), Term(1.0, "b"))),
                    ),
                    inputs=frozenset({"a", "b"}),
                    outputs=frozenset({"a", "b"}),
                ),
            )
        )
        assert recipe.coefficients() == (0.9, -0.5)

    def test_bank_budget_validation(self):
        recipe = UpdateRecipe(
            passes=(
                UpdatePass(
                    ops=(
                        Lincomb("a", (Term(1.0, "b"),)),
                    ),
                    inputs=frozenset({"a", "b", "c", "d", "e"}),
                    outputs=frozenset({"a"}),
                ),
            )
        )
        with pytest.raises(CompileError):
            recipe.validate_bank_budget(4)
        recipe.validate_bank_budget(5)

    def test_dram_arrays_union(self):
        p = UpdatePass(
            ops=(), inputs=frozenset({"a"}), outputs=frozenset({"b"})
        )
        assert p.dram_arrays() == frozenset({"a", "b"})


class TestInterpreter:
    def test_plain_sgd_semantics(self):
        recipe = _simple_recipe()
        theta = np.array([1.0, 2.0], dtype=np.float32)
        grad = np.array([1.0, -1.0], dtype=np.float32)
        env = interpret_recipe(
            recipe, {"theta": theta, "grad": grad}, approximate=False
        )
        np.testing.assert_allclose(
            env["theta"], [1.0 - 0.01, 2.0 + 0.01], rtol=1e-6
        )

    def test_approximate_uses_scaler_values(self):
        recipe = _simple_recipe()
        coef_map = approximate_coefficients(recipe)
        theta = np.zeros(4, dtype=np.float32)
        grad = np.ones(4, dtype=np.float32)
        env = interpret_recipe(recipe, {"theta": theta, "grad": grad})
        expected = np.float32(coef_map[-0.01].value)
        np.testing.assert_array_equal(env["theta"], expected)

    def test_missing_input_rejected(self):
        recipe = _simple_recipe()
        with pytest.raises(CompileError):
            interpret_recipe(recipe, {"theta": np.zeros(2)})

    def test_intermediates_visible_in_env(self):
        recipe = UpdateRecipe(
            passes=(
                UpdatePass(
                    ops=(
                        Mul("_gg", Term(1.0, "g"), "g"),
                        Lincomb("acc", (Term(1.0, "acc"),
                                        Term(1.0, "_gg"))),
                    ),
                    inputs=frozenset({"g", "acc"}),
                    outputs=frozenset({"acc"}),
                ),
            ),
            needs_extended_alu=True,
        )
        g = np.array([3.0], dtype=np.float32)
        acc = np.array([1.0], dtype=np.float32)
        env = interpret_recipe(
            recipe, {"g": g, "acc": acc}, approximate=False
        )
        assert env["_gg"][0] == 9.0
        assert env["acc"][0] == 10.0

    def test_rsqrt_semantics(self):
        recipe = UpdateRecipe(
            passes=(
                UpdatePass(
                    ops=(RsqrtMul("u", "m", "v", epsilon=0.0),),
                    inputs=frozenset({"m", "v"}),
                    outputs=frozenset({"u"}),
                ),
            ),
            needs_extended_alu=True,
        )
        m = np.array([8.0], dtype=np.float32)
        v = np.array([4.0], dtype=np.float32)
        env = interpret_recipe(recipe, {"m": m, "v": v})
        assert env["u"][0] == pytest.approx(4.0)

    def test_inputs_not_mutated(self):
        recipe = _simple_recipe()
        theta = np.ones(4, dtype=np.float32)
        interpret_recipe(
            recipe, {"theta": theta, "grad": np.ones(4, np.float32)}
        )
        assert np.all(theta == 1.0)
