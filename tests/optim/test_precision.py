"""Precision-configuration tests."""

import pytest

from repro.errors import ConfigError
from repro.optim.precision import (
    PRECISION_8_16,
    PRECISION_8_32,
    PRECISION_16_32,
    PRECISION_FULL,
    PRECISIONS,
    PrecisionConfig,
)


def test_registry_matches_fig12c():
    assert set(PRECISIONS) == {"8/32", "16/32", "8/16", "32/32"}


def test_default_mix_properties():
    p = PRECISION_8_32
    assert p.name == "8/32"
    assert p.lp_bytes == 1
    assert p.hp_bytes == 4
    assert p.ratio == 4
    assert not p.is_full


def test_half_ratio_mixes():
    assert PRECISION_16_32.ratio == 2
    assert PRECISION_8_16.ratio == 2


def test_full_precision():
    assert PRECISION_FULL.is_full
    assert PRECISION_FULL.ratio == 1


def test_quant_spec_generation():
    spec = PRECISION_8_32.quant_spec(exponent=-5)
    assert spec.hp_bits == 32
    assert spec.lp_bits == 8
    assert spec.exponent == -5


def test_full_precision_has_no_quant_spec():
    with pytest.raises(ConfigError):
        PRECISION_FULL.quant_spec()


def test_rejects_lp_above_hp():
    with pytest.raises(ConfigError):
        PrecisionConfig(32, 16)


def test_rejects_unknown_widths():
    with pytest.raises(ConfigError):
        PrecisionConfig(4, 32)
    with pytest.raises(ConfigError):
        PrecisionConfig(8, 64)
