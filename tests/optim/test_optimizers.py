"""Optimizer tests: hardware recipes against textbook references.

The central property: the *hardware* step (recipe interpreted with
float32 arithmetic and 2^n±2^m-approximated coefficients) must track
the float64 textbook step within the error budget of the approximation,
and with ``approximate=False`` the only difference is float32 rounding.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.optim import (
    SGD,
    Adam,
    AdamW,
    AdaGrad,
    MomentumSGD,
    NAG,
    RMSprop,
)

ALL_OPTIMIZERS = [
    SGD(eta=0.01),
    MomentumSGD(eta=0.01, alpha=0.9),
    MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4),
    NAG(eta=0.01, alpha=0.9),
    Adam(eta=0.001),
    AdamW(eta=0.001, weight_decay=0.01),
    AdaGrad(eta=0.01),
    RMSprop(eta=0.01),
]

LINEAR = ALL_OPTIMIZERS[:4]
ADAPTIVE = ALL_OPTIMIZERS[4:]


def _tensors(rng, n=256):
    theta = rng.normal(0, 0.5, n)
    grad = rng.normal(0, 0.2, n)
    return theta, grad


@pytest.mark.parametrize("opt", ALL_OPTIMIZERS, ids=lambda o: o.name)
class TestAgainstReference:
    def test_exact_mode_matches_float64_reference(self, opt, rng):
        theta, grad = _tensors(rng)
        state = opt.init_state(len(theta))
        ref_theta, _ = opt.reference_step(theta, grad, state)
        hw_theta, _ = opt.hardware_step(
            theta.astype(np.float32),
            grad.astype(np.float32),
            {k: v.astype(np.float32) for k, v in state.items()},
            approximate=False,
        )
        np.testing.assert_allclose(hw_theta, ref_theta, atol=1e-5)

    def test_approximate_mode_within_scaler_budget(self, opt, rng):
        theta, grad = _tensors(rng)
        state = opt.init_state(len(theta))
        ref_theta, _ = opt.reference_step(theta, grad, state)
        hw_theta, _ = opt.hardware_step(
            theta.astype(np.float32),
            grad.astype(np.float32),
            {k: v.astype(np.float32) for k, v in state.items()},
        )
        # The update magnitude is O(eta * |grad|); the scaler error is a
        # few percent of that, far below |theta| itself.
        delta = np.max(np.abs(hw_theta - ref_theta))
        step = np.max(np.abs(ref_theta - theta)) + 1e-12
        assert delta <= 0.25 * step + 1e-6

    def test_multi_step_state_consistency(self, opt, rng):
        """Hardware state arrays track the reference over 5 steps."""
        theta, _ = _tensors(rng, 64)
        theta32 = theta.astype(np.float32)
        ref_theta = theta.copy()
        state = opt.init_state(64)
        state32 = {k: v.astype(np.float32) for k, v in state.items()}
        for step in range(5):
            grad = rng.normal(0, 0.2, 64)
            ref_theta, state = opt.reference_step(ref_theta, grad, state)
            theta32, state32 = opt.hardware_step(
                theta32, grad.astype(np.float32), state32,
                approximate=False,
            )
        np.testing.assert_allclose(theta32, ref_theta, atol=1e-4)

    def test_describe_mentions_name(self, opt):
        assert opt.name in opt.describe()


@pytest.mark.parametrize("opt", LINEAR, ids=lambda o: o.name)
def test_linear_optimizers_fit_base_alu(opt):
    assert not opt.recipe().needs_extended_alu


@pytest.mark.parametrize("opt", ADAPTIVE, ids=lambda o: o.name)
def test_adaptive_optimizers_need_extension(opt):
    assert opt.recipe().needs_extended_alu


@pytest.mark.parametrize("opt", ADAPTIVE, ids=lambda o: o.name)
def test_adaptive_recipes_are_multi_pass(opt):
    """The §VIII multi-pass rule: each pass fits four banks."""
    recipe = opt.recipe()
    assert len(recipe.passes) >= 2
    recipe.validate_bank_budget(4)


@pytest.mark.parametrize("opt", ALL_OPTIMIZERS, ids=lambda o: o.name)
def test_scaler_slot_budget_per_pass(opt):
    """No single pass may need more than the 3 programmable scaler
    slots — they can only be MRW-reprogrammed between passes."""
    for p in opt.recipe().passes:
        coefs = {
            c for op in p.ops for c in op.coefficients() if c != 1.0
        }
        assert len(coefs) <= 3


class TestConvergence:
    """Optimizers must actually optimize: a quadratic bowl converges."""

    @pytest.mark.parametrize(
        "opt",
        [
            SGD(eta=0.1),
            MomentumSGD(eta=0.05, alpha=0.9),
            NAG(eta=0.05, alpha=0.9),
            Adam(eta=0.1),
            AdaGrad(eta=0.5),
            RMSprop(eta=0.05),
        ],
        ids=lambda o: o.name,
    )
    def test_quadratic_bowl(self, opt, rng):
        theta = rng.normal(0, 1.0, 32).astype(np.float32)
        state = {
            k: v.astype(np.float32)
            for k, v in opt.init_state(32).items()
        }
        start = float(np.sum(theta.astype(np.float64) ** 2))
        for step in range(150):
            if isinstance(opt, Adam):
                opt.step = step + 1
            grad = 2.0 * theta  # d/dtheta of sum(theta^2)
            theta, state = opt.hardware_step(theta, grad, state)
        end = float(np.sum(theta.astype(np.float64) ** 2))
        assert end < 0.05 * start


class TestValidation:
    def test_negative_learning_rate_rejected(self):
        for ctor in (SGD, MomentumSGD, NAG, Adam, AdaGrad, RMSprop):
            with pytest.raises(ConfigError):
                ctor(eta=-1.0)

    def test_momentum_range(self):
        with pytest.raises(ConfigError):
            MomentumSGD(alpha=1.0)

    def test_weight_decay_nonnegative(self):
        with pytest.raises(ConfigError):
            MomentumSGD(weight_decay=-0.1)

    def test_adam_betas(self):
        with pytest.raises(ConfigError):
            Adam(beta1=1.5)
        with pytest.raises(ConfigError):
            Adam(beta2=-0.1)

    def test_adam_step_positive(self):
        with pytest.raises(ConfigError):
            Adam(step=0)

    def test_rmsprop_rho(self):
        with pytest.raises(ConfigError):
            RMSprop(rho=2.0)


def test_adam_bias_correction_folded():
    early = Adam(eta=0.001, step=1)
    late = Adam(eta=0.001, step=10000)
    # At t=1 the folded rate is eta*sqrt(1-b2)/(1-b1) < eta; it decays
    # toward plain eta as both corrections approach 1.
    assert early.eta_t == pytest.approx(
        0.001 * (1 - 0.999) ** 0.5 / (1 - 0.9)
    )
    assert late.eta_t == pytest.approx(0.001, rel=1e-3)


def test_momentum_without_decay_has_two_coefficients():
    opt = MomentumSGD(eta=0.01, alpha=0.9, weight_decay=0.0)
    assert len(opt.recipe().coefficients()) == 2


def test_momentum_with_decay_has_three_coefficients():
    opt = MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4)
    assert len(opt.recipe().coefficients()) == 3


@given(
    st.floats(min_value=1e-4, max_value=0.5),
    st.floats(min_value=0.0, max_value=0.99),
)
@settings(max_examples=30, deadline=None)
def test_momentum_hardware_tracks_reference(eta, alpha):
    rng = np.random.default_rng(7)
    opt = MomentumSGD(eta=eta, alpha=alpha)
    theta = rng.normal(0, 1, 64)
    grad = rng.normal(0, 1, 64)
    state = opt.init_state(64)
    ref, _ = opt.reference_step(theta, grad, state)
    hw, _ = opt.hardware_step(
        theta.astype(np.float32), grad.astype(np.float32),
        {k: v.astype(np.float32) for k, v in state.items()},
        approximate=False,
    )
    np.testing.assert_allclose(hw, ref, atol=1e-4)
