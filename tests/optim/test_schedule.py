"""Learning-rate scheduling tests (paper §VIII)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.optim.schedule import (
    CosineSchedule,
    PolynomialSchedule,
    StepSchedule,
    schedule_error,
)


class TestStepSchedule:
    def test_halving_is_exact_on_hardware(self):
        """The paper's shifter path: scaling by 2 is exact."""
        sched = StepSchedule(
            base_lr=0.5, total_steps=40, period=10, factor=0.5
        )
        assert sched.factor_is_power_of_two
        assert schedule_error(sched) == 0.0

    def test_decay_at_period_boundaries(self):
        sched = StepSchedule(
            base_lr=0.5, total_steps=30, period=10, factor=0.5
        )
        assert sched.lr(0) == 0.5
        assert sched.lr(9) == 0.5
        assert sched.lr(10) == 0.25
        assert sched.lr(29) == 0.125

    def test_reprogram_points_are_period_starts(self):
        sched = StepSchedule(
            base_lr=0.5, total_steps=30, period=10, factor=0.5
        )
        assert sched.mrw_reprogram_points() == [0, 10, 20]

    def test_non_pow2_factor_flagged(self):
        sched = StepSchedule(
            base_lr=0.5, total_steps=10, period=5, factor=0.3
        )
        assert not sched.factor_is_power_of_two

    def test_validation(self):
        with pytest.raises(ConfigError):
            StepSchedule(0.1, 10, period=0)
        with pytest.raises(ConfigError):
            StepSchedule(0.1, 10, period=5, factor=1.5)


class TestCosineSchedule:
    def test_endpoints(self):
        sched = CosineSchedule(base_lr=0.1, total_steps=100)
        assert sched.lr(0) == pytest.approx(0.1)
        assert sched.lr(99) == pytest.approx(sched.min_lr)

    def test_monotone_decay(self):
        sched = CosineSchedule(base_lr=0.1, total_steps=50)
        rates = sched.schedule()
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_hardware_error_bounded(self):
        """The 2^n±2^m approximation stays within its 1/6 bound over
        the entire annealing curve."""
        sched = CosineSchedule(base_lr=0.1, total_steps=200)
        assert schedule_error(sched) <= 1.0 / 6.0 + 1e-9

    def test_far_fewer_reprograms_than_steps(self):
        """MRW cost: the coarse scaler grid means the value changes
        much less often than every step — the §VIII 'small overhead'."""
        sched = CosineSchedule(base_lr=0.1, total_steps=1000)
        points = sched.mrw_reprogram_points()
        assert points[0] == 0
        assert len(points) < 100

    def test_validation(self):
        with pytest.raises(ConfigError):
            CosineSchedule(base_lr=0.1, total_steps=10, min_lr=0.5)
        with pytest.raises(ConfigError):
            CosineSchedule(base_lr=-0.1, total_steps=10)


class TestPolynomialSchedule:
    def test_endpoints(self):
        sched = PolynomialSchedule(base_lr=0.1, total_steps=100)
        assert sched.lr(0) == pytest.approx(0.1)
        assert sched.lr(99) == pytest.approx(sched.min_lr)

    def test_monotone_decay(self):
        sched = PolynomialSchedule(
            base_lr=0.1, total_steps=60, power=0.9
        )
        rates = sched.schedule()
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_hardware_error_bounded(self):
        sched = PolynomialSchedule(base_lr=0.1, total_steps=200)
        assert schedule_error(sched) <= 1.0 / 6.0 + 1e-9

    def test_min_lr_floor(self):
        sched = PolynomialSchedule(
            base_lr=0.1, total_steps=100, power=3.0, min_lr=1e-3
        )
        assert sched.lr(99) == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PolynomialSchedule(base_lr=0.1, total_steps=10, power=-1)


class TestCommon:
    def test_out_of_range_step_rejected(self):
        sched = CosineSchedule(base_lr=0.1, total_steps=10)
        with pytest.raises(ConfigError):
            sched.lr(10)
        with pytest.raises(ConfigError):
            sched.lr(-1)

    def test_zero_steps_rejected(self):
        with pytest.raises(ConfigError):
            CosineSchedule(base_lr=0.1, total_steps=0)

    def test_hardware_schedule_length(self):
        sched = CosineSchedule(base_lr=0.1, total_steps=25)
        assert len(sched.hardware_schedule()) == 25

    @given(
        st.floats(min_value=1e-4, max_value=1.0),
        st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=30, deadline=None)
    def test_hardware_values_track_exact(self, base_lr, steps):
        sched = CosineSchedule(base_lr=base_lr, total_steps=steps)
        for step in range(steps):
            exact = sched.lr(step)
            approx = sched.hardware_lr(step).value
            assert abs(approx - exact) / exact <= 1.0 / 6.0 + 1e-9

    def test_step_schedule_reprograms_align_with_decays(self):
        sched = StepSchedule(
            base_lr=0.25, total_steps=100, period=25, factor=0.5
        )
        assert sched.mrw_reprogram_points() == [0, 25, 50, 75]
