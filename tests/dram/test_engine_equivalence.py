"""Incremental and columnar engines == reference scheduler.

The incremental event-driven engine (:mod:`repro.dram.engine`) and the
columnar struct-of-arrays engine (:mod:`repro.dram.columnar`) promise
*exact* equivalence with the reference greedy loop: identical issue
cycles and identical :class:`TraceStats` on every stream. These tests
enforce the contract three ways:

* golden checks over every design point's real update stream;
* Hypothesis property tests sweeping windows, issue models, data-bus
  scopes, per-bank PIM, and all four update-kind stream generators;
* Hypothesis property tests over random synthetic (but structurally
  legal) command streams with random backward dependencies.

They also pin the ``run()`` API contract the engines share: caller
commands are never mutated, re-scheduling is deterministic, and a
supplied dependents adjacency changes nothing.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.commands import Command, CommandType
from repro.dram.engine import build_dependents
from repro.dram.scheduler import (
    CommandScheduler,
    IssueModel,
    _fresh_copy,
    replicate_across_channels,
)
from repro.dram.timing import DDR4_2133, PRESETS
from repro.errors import ConfigError, SimulationError
from repro.optim.precision import PRECISIONS
from repro.optim.registry import build_optimizer
from repro.system.design import DESIGNS, DesignPoint
from repro.system.update_model import UpdatePhaseModel

T = DDR4_2133
GEOM = UpdatePhaseModel().geometry  # the paper's default geometry


def _schedulers(issue_model=None, **kwargs):
    reference = CommandScheduler(
        T, GEOM, issue_model, engine="reference", **kwargs
    )
    incremental = CommandScheduler(
        T, GEOM, issue_model, engine="incremental", **kwargs
    )
    columnar = CommandScheduler(
        T, GEOM, issue_model, engine="columnar", **kwargs
    )
    return reference, incremental, columnar


def _assert_equivalent(commands, issue_model=None, dependents=None,
                       **kwargs):
    """All engines produce the same schedule — or the same deadlock.

    A window-limited scheduler can legitimately deadlock on streams
    whose cross-port dependencies point beyond every port's lookahead;
    equivalence then means every engine refuses identically.
    """
    reference, incremental, columnar = _schedulers(issue_model, **kwargs)
    try:
        ref = reference.run(commands)
    except SimulationError as exc:
        with pytest.raises(SimulationError) as caught:
            incremental.run(commands, dependents=dependents)
        assert str(caught.value) == str(exc)
        with pytest.raises(SimulationError) as caught:
            columnar.run(commands, dependents=dependents)
        assert str(caught.value) == str(exc)
        return None, None
    new = incremental.run(commands, dependents=dependents)
    assert ref.issue_cycles() == new.issue_cycles()
    assert ref.stats == new.stats
    col = columnar.run(commands, dependents=dependents)
    assert ref.issue_cycles() == col.issue_cycles()
    assert ref.stats == col.stats
    return ref, new


def _design_stream(design, model=None):
    model = model or UpdatePhaseModel(columns_per_stripe=8)
    optimizer = build_optimizer(
        "momentum_sgd", {"eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4}
    )
    config = DESIGNS[design]
    commands, _, _, dependents, _period, _art = model._build_stream(
        config, optimizer, PRECISIONS["8/32"]
    )
    return config, commands, dependents


class TestGoldenDesignPoints:
    @pytest.mark.parametrize("design", list(DesignPoint))
    def test_identical_schedule_per_design(self, design):
        config, commands, dependents = _design_stream(design)
        _assert_equivalent(
            commands,
            issue_model=config.issue_model(GEOM),
            dependents=dependents,
            per_bank_pim=config.per_bank_pim,
            data_bus_scope=config.data_bus_scope,
        )

    def test_profile_identical_across_engines(self):
        optimizer = build_optimizer(
            "momentum_sgd",
            {"eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4},
        )
        seed = UpdatePhaseModel(
            columns_per_stripe=8, engine="reference",
            thorough_validate=True,
        )
        new = UpdatePhaseModel(columns_per_stripe=8)
        col = UpdatePhaseModel(columns_per_stripe=8, engine="columnar")
        for design in DesignPoint:
            expected = seed.profile(design, optimizer)
            assert expected == new.profile(design, optimizer)
            assert expected == col.profile(design, optimizer)


class TestRunContract:
    def test_caller_commands_never_mutated(self):
        _, commands, _ = _design_stream(DesignPoint.GRADPIM_BUFFERED)
        config = DESIGNS[DesignPoint.GRADPIM_BUFFERED]
        for engine in ("reference", "incremental", "columnar"):
            sched = CommandScheduler(
                T, GEOM, config.issue_model(GEOM), engine=engine,
                data_bus_scope=config.data_bus_scope,
            )
            result = sched.run(commands)
            assert all(c.issue_cycle == -1 for c in commands)
            assert all(c.issue_cycle >= 0 for c in result.commands)

    @pytest.mark.parametrize(
        "engine", ["reference", "incremental", "columnar"]
    )
    def test_rescheduling_same_stream_is_identical(self, engine):
        # Regression: the seed scheduler annotated the caller's Command
        # objects in place, so a second run of the same stream saw
        # stale issue cycles as "already issued" dependencies.
        config, commands, _ = _design_stream(DesignPoint.GRADPIM_DIRECT)
        sched = CommandScheduler(
            T, GEOM, config.issue_model(GEOM), engine=engine,
            data_bus_scope=config.data_bus_scope,
        )
        first = sched.run(commands)
        second = sched.run(commands)
        assert first.issue_cycles() == second.issue_cycles()
        assert first.stats == second.stats

    def test_supplied_dependents_change_nothing(self):
        config, commands, dependents = _design_stream(
            DesignPoint.GRADPIM_DIRECT
        )
        _, incremental, _ = _schedulers(
            config.issue_model(GEOM),
            data_bus_scope=config.data_bus_scope,
        )
        with_deps = incremental.run(commands, dependents=dependents)
        without = incremental.run(commands)
        assert with_deps.issue_cycles() == without.issue_cycles()

    def test_build_dependents_matches_deps(self):
        _, commands, dependents = _design_stream(DesignPoint.AOS)
        rebuilt = build_dependents(commands)
        assert rebuilt == dependents
        for i, cmd in enumerate(commands):
            for d in cmd.deps:
                assert i in rebuilt[d]

    def test_fresh_copy_covers_every_field(self):
        cmd = Command(
            CommandType.SCALED_READ, rank=1, bankgroup=2, bank=3, row=7,
            col=9, scale_id=1, dst_reg=1, src_reg=0, position=2,
            deps=(1, 4), tag="x", scaler=object(),
        )
        cmd.issue_cycle = 123
        copy = _fresh_copy(cmd)
        assert copy.issue_cycle == -1
        for field in dataclasses.fields(Command):
            if field.name == "issue_cycle":
                continue
            assert getattr(copy, field.name) == getattr(cmd, field.name)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            CommandScheduler(T, GEOM, engine="warp-speed")


# ----------------------------------------------------------------------
# Property tests: generator streams under random configurations
# ----------------------------------------------------------------------
_UPDATE_KINDS = st.sampled_from(
    [
        DesignPoint.BASELINE,  # baseline-stream
        DesignPoint.TENSORDIMM,  # nmp-stream
        DesignPoint.GRADPIM_BUFFERED,  # pim-kernel
        DesignPoint.AOS_PB,  # aos-kernel, per-bank PIM
    ]
)


class TestGeneratorStreamProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        design=_UPDATE_KINDS,
        window=st.integers(min_value=1, max_value=40),
        buffered=st.booleans(),
        scope=st.sampled_from(["channel", "dimm", "rank"]),
        timing_name=st.sampled_from(sorted(PRESETS)),
        optimizer_name=st.sampled_from(["sgd", "momentum_sgd"]),
        channels=st.sampled_from([1, 2, 4]),
    )
    def test_equivalent_under_random_configuration(
        self, design, window, buffered, scope, timing_name,
        optimizer_name, channels,
    ):
        optimizer = build_optimizer(optimizer_name, {"eta": 0.01})
        config = DESIGNS[design]
        model = UpdatePhaseModel(
            timing=PRESETS[timing_name], columns_per_stripe=4
        )
        commands, _, _, dependents, _period, _art = model._build_stream(
            config, optimizer, PRECISIONS["8/32"]
        )
        issue_model = (
            IssueModel.buffered(GEOM.ranks)
            if buffered
            else IssueModel.direct(GEOM.ranks)
        )
        geometry = (
            GEOM
            if channels == 1
            else dataclasses.replace(GEOM, channels=channels)
        )
        if channels > 1:
            commands, dependents = replicate_across_channels(
                commands, channels, dependents
            )
        timing = PRESETS[timing_name]
        engine_kwargs = dict(
            per_bank_pim=config.per_bank_pim, window=window,
            data_bus_scope=scope,
        )
        reference = CommandScheduler(
            timing, geometry, issue_model, engine="reference",
            **engine_kwargs,
        )
        incremental = CommandScheduler(
            timing, geometry, issue_model, engine="incremental",
            **engine_kwargs,
        )
        columnar = CommandScheduler(
            timing, geometry, issue_model, engine="columnar",
            **engine_kwargs,
        )
        ref = reference.run(commands)
        new = incremental.run(commands, dependents=dependents)
        assert ref.issue_cycles() == new.issue_cycles()
        assert ref.stats == new.stats
        col = columnar.run(commands, dependents=dependents)
        assert ref.issue_cycles() == col.issue_cycles()
        assert ref.stats == col.stats


# ----------------------------------------------------------------------
# Property tests: synthetic random legal streams
# ----------------------------------------------------------------------
@st.composite
def synthetic_streams(draw):
    """Structurally legal random streams with random backward deps.

    Per bank: ACT -> column accesses -> PRE bracketing, interleaved
    across a random bank set; every command may additionally depend on
    any earlier command (the scheduler only requires deps to point
    backwards).
    """
    n_banks = draw(st.integers(min_value=1, max_value=6))
    bank_coords = draw(
        st.lists(
            st.tuples(
                st.integers(0, GEOM.ranks - 1),
                st.integers(0, GEOM.bankgroups - 1),
                st.integers(0, GEOM.banks_per_group - 1),
            ),
            min_size=n_banks,
            max_size=n_banks,
            unique=True,
        )
    )
    commands: list[Command] = []
    open_act: dict[tuple, int] = {}  # bank -> ACT index
    accesses: dict[tuple, list[int]] = {}

    def extra_dep():
        if commands and draw(st.booleans()):
            return (draw(st.integers(0, len(commands) - 1)),)
        return ()

    n_ops = draw(st.integers(min_value=3, max_value=40))
    kinds = st.sampled_from(
        [
            CommandType.RD,
            CommandType.WR,
            CommandType.SCALED_READ,
            CommandType.WRITEBACK,
            CommandType.QREG_LOAD,
            CommandType.QREG_STORE,
            CommandType.PIM_ADD,
            CommandType.PIM_QUANT,
        ]
    )
    for _ in range(n_ops):
        bank = draw(st.sampled_from(bank_coords))
        rank, bg, b = bank
        kind = draw(kinds)
        if kind in (CommandType.PIM_ADD, CommandType.PIM_QUANT):
            # ALU ops need no open row.
            commands.append(
                Command(kind, rank=rank, bankgroup=bg, deps=extra_dep())
            )
            continue
        row = draw(st.integers(0, 2))
        act = open_act.get(bank)
        if act is not None and commands[act].row != row:
            # Close and reopen on a different row.
            pre = Command(
                CommandType.PRE, rank=rank, bankgroup=bg, bank=b,
                row=commands[act].row,
                deps=tuple(accesses[bank]) or (act,),
            )
            commands.append(pre)
            open_act[bank] = None
            act = None
        if act is None:
            commands.append(
                Command(
                    CommandType.ACT, rank=rank, bankgroup=bg, bank=b,
                    row=row,
                    deps=(len(commands) - 1,) if commands else (),
                )
            )
            act = len(commands) - 1
            open_act[bank] = act
            accesses[bank] = []
        commands.append(
            Command(
                kind, rank=rank, bankgroup=bg, bank=b,
                row=commands[act].row, col=draw(st.integers(0, 7)),
                deps=(act,) + extra_dep(),
            )
        )
        accesses[bank].append(len(commands) - 1)
    return commands


class TestSyntheticStreamProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        commands=synthetic_streams(),
        window=st.integers(min_value=1, max_value=24),
        buffered=st.booleans(),
        scope=st.sampled_from(["channel", "dimm", "rank"]),
        per_bank=st.booleans(),
    )
    def test_equivalent_on_random_streams(
        self, commands, window, buffered, scope, per_bank
    ):
        issue_model = (
            IssueModel.buffered(GEOM.ranks)
            if buffered
            else IssueModel.direct(GEOM.ranks)
        )
        _assert_equivalent(
            commands,
            issue_model=issue_model,
            window=window,
            data_bus_scope=scope,
            per_bank_pim=per_bank,
        )

    @settings(max_examples=30, deadline=None)
    @given(
        commands=synthetic_streams(),
        window=st.integers(min_value=1, max_value=24),
        channels=st.sampled_from([2, 4]),
        per_bank=st.booleans(),
    )
    def test_equivalent_on_random_multi_channel_streams(
        self, commands, window, channels, per_bank
    ):
        """All engines agree on random streams tiled across channels —
        the same contract as single-channel, along the channel axis."""
        replicated, _ = replicate_across_channels(commands, channels)
        geometry = dataclasses.replace(GEOM, channels=channels)
        reference = CommandScheduler(
            T, geometry, engine="reference", window=window,
            per_bank_pim=per_bank,
        )
        incremental = CommandScheduler(
            T, geometry, engine="incremental", window=window,
            per_bank_pim=per_bank,
        )
        columnar = CommandScheduler(
            T, geometry, engine="columnar", window=window,
            per_bank_pim=per_bank,
        )
        try:
            ref = reference.run(replicated)
        except SimulationError as exc:
            with pytest.raises(SimulationError) as caught:
                incremental.run(replicated)
            assert str(caught.value) == str(exc)
            with pytest.raises(SimulationError) as caught:
                columnar.run(replicated)
            assert str(caught.value) == str(exc)
            return
        new = incremental.run(replicated)
        assert ref.issue_cycles() == new.issue_cycles()
        assert ref.stats == new.stats
        col = columnar.run(replicated)
        assert ref.issue_cycles() == col.issue_cycles()
        assert ref.stats == col.stats
