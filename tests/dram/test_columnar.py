"""The columnar command-stream core: round-trip, memo, validator.

:class:`repro.dram.columnar.ColumnarStream` is the struct-of-arrays
twin of a ``list[Command]``; the contract is *lossless* conversion in
both directions. These tests enforce:

* Hypothesis round-trip over arbitrary synthetic streams — including
  cross-bank dependencies, duplicate dep entries, tags, scaler
  payloads, and dependency shapes that would deadlock a scheduler
  (round-tripping never schedules) — rebuilding every ``Command``
  field byte-identically, and rebuilding the columns identically from
  the rebuilt commands;
* the CSR dependency transpose matches :func:`build_dependents`;
* structural precondition errors (illegal dep, rank/channel out of
  range) match the scalar scheduler loops' messages exactly;
* issue-cycle memoization: re-scheduling the same stream object is
  byte-identical and hits the memo (no second cold pass);
* the frozen columns refuse in-place mutation;
* ``validate_trace_columnar`` accepts exactly what ``validate_trace``
  accepts, and rejects seeded corruptions with the *same* exception
  text (the scalar fallback re-raise).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.columnar import ColumnarStream
from repro.dram.commands import Command, CommandType
from repro.dram.engine import build_dependents
from repro.dram.scheduler import CommandScheduler
from repro.dram.timing import DDR4_2133
from repro.dram.validator import validate_trace, validate_trace_columnar
from repro.errors import SimulationError, TimingViolation
from repro.optim.precision import PRECISIONS
from repro.optim.registry import build_optimizer
from repro.system.design import DESIGNS, DesignPoint
from repro.system.update_model import UpdatePhaseModel

T = DDR4_2133
GEOM = UpdatePhaseModel().geometry

_KINDS = st.sampled_from(list(CommandType))


class _Scaler:
    """Opaque payload standing in for a ScalerValue."""


@st.composite
def arbitrary_commands(draw):
    """Arbitrary command lists: every field exercised, deps random
    backward sets with duplicates allowed, no schedulability
    requirement (deadlock shapes included by construction)."""
    n = draw(st.integers(min_value=0, max_value=30))
    commands = []
    for i in range(n):
        deps = ()
        if i and draw(st.booleans()):
            deps = tuple(
                draw(
                    st.lists(
                        st.integers(0, i - 1), min_size=1, max_size=4
                    )
                )
            )  # duplicates allowed
        commands.append(
            Command(
                draw(_KINDS),
                rank=draw(st.integers(0, 3)),
                bankgroup=draw(st.integers(0, 3)),
                bank=draw(st.integers(0, 3)),
                row=draw(st.integers(0, 1 << 20)),
                col=draw(st.integers(0, 127)),
                channel=draw(st.integers(0, 3)),
                scale_id=draw(st.integers(0, 3)),
                dst_reg=draw(st.integers(0, 2)),
                src_reg=draw(st.integers(0, 2)),
                position=draw(st.integers(0, 3)),
                deps=deps,
                tag=draw(st.one_of(st.none(), st.text(max_size=8))),
                scaler=draw(
                    st.one_of(st.none(), st.builds(_Scaler))
                ),
            )
        )
    return commands


def _design_stream(design):
    model = UpdatePhaseModel(columns_per_stripe=8)
    optimizer = build_optimizer(
        "momentum_sgd", {"eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4}
    )
    config = DESIGNS[design]
    commands, _, _, dependents, _period, art = model._build_stream(
        config, optimizer, PRECISIONS["8/32"]
    )
    return config, commands, dependents, art


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(commands=arbitrary_commands())
    def test_commands_columnar_commands_is_identity(self, commands):
        stream = ColumnarStream.from_commands(commands)
        rebuilt = stream.to_commands()
        assert rebuilt == commands
        # And the columns rebuild identically from the rebuilt list.
        again = ColumnarStream.from_commands(rebuilt)
        for name in (
            "kind", "rank", "bankgroup", "bank", "channel", "row",
            "col", "scale_id", "dst_reg", "src_reg", "position",
            "dep_indptr", "dep_indices", "out_indptr", "out_indices",
        ):
            assert np.array_equal(
                getattr(stream, name), getattr(again, name)
            ), name

    @settings(max_examples=50, deadline=None)
    @given(commands=arbitrary_commands())
    def test_dependents_transpose_matches_reference(self, commands):
        stream = ColumnarStream.from_commands(commands)
        assert stream.dependents_lists() == build_dependents(commands)

    @pytest.mark.parametrize("design", list(DesignPoint))
    def test_design_streams_round_trip(self, design):
        _, commands, dependents, art = _design_stream(design)
        stream = ColumnarStream.from_commands(
            commands, dependents=dependents
        )
        assert stream.to_commands() == commands
        # The artifact's cached stream is the same content.
        assert art.columnar.to_commands() == commands

    def test_columns_are_frozen(self):
        _, commands, _, art = _design_stream(DesignPoint.GRADPIM_DIRECT)
        with pytest.raises(ValueError):
            art.columnar.kind[0] = 0
        with pytest.raises(ValueError):
            art.columnar.dep_indices[0] = 0


class TestStructureChecks:
    def _engines(self):
        incremental = CommandScheduler(T, GEOM, engine="incremental")
        columnar = CommandScheduler(T, GEOM, engine="columnar")
        return incremental, columnar

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda c: setattr(c[1], "deps", (1,)),  # self-dependency
            lambda c: setattr(c[0], "rank", 99),
            lambda c: setattr(c[0], "channel", 7),
        ],
        ids=["illegal-dep", "rank-range", "channel-range"],
    )
    def test_structural_errors_match_scalar_messages(self, mutate):
        commands = [
            Command(CommandType.ACT, rank=0, bankgroup=0, bank=0),
            Command(
                CommandType.RD, rank=0, bankgroup=0, bank=0, deps=(0,)
            ),
        ]
        mutate(commands)
        incremental, columnar = self._engines()
        with pytest.raises(SimulationError) as scalar:
            incremental.run(commands)
        with pytest.raises(SimulationError) as vectorized:
            columnar.run(commands)
        assert str(vectorized.value) == str(scalar.value)


class TestMemoization:
    def test_rescheduling_shared_stream_is_identical(self):
        config, commands, _, art = _design_stream(
            DesignPoint.GRADPIM_BUFFERED
        )
        sched = CommandScheduler(
            T, GEOM, config.issue_model(GEOM), engine="columnar",
            per_bank_pim=config.per_bank_pim,
            data_bus_scope=config.data_bus_scope,
        )
        first = sched.run(commands, columnar=art.columnar)
        second = sched.run(commands, columnar=art.columnar)
        assert first.issue_cycles() == second.issue_cycles()
        assert first.stats == second.stats
        # The memoized cycle vector is shared between replays, so it
        # must be frozen: corrupting one result cannot poison the next.
        with pytest.raises(ValueError):
            second.columnar.issue_cycle[0] = 0

    def test_memo_distinguishes_substrates(self):
        config, commands, _, art = _design_stream(
            DesignPoint.GRADPIM_DIRECT
        )
        base = CommandScheduler(
            T, GEOM, config.issue_model(GEOM), engine="columnar",
            data_bus_scope=config.data_bus_scope,
        )
        narrow = CommandScheduler(
            T, GEOM, config.issue_model(GEOM), engine="columnar",
            data_bus_scope=config.data_bus_scope, window=1,
        )
        wide = base.run(commands, columnar=art.columnar)
        small = narrow.run(commands, columnar=art.columnar)
        reference = CommandScheduler(
            T, GEOM, config.issue_model(GEOM), engine="reference",
            data_bus_scope=config.data_bus_scope, window=1,
        )
        assert small.issue_cycles() == reference.run(
            commands
        ).issue_cycles()
        assert wide.issue_cycles() != small.issue_cycles()


class TestColumnarValidator:
    @pytest.mark.parametrize("design", list(DesignPoint))
    def test_valid_traces_accepted_by_both(self, design):
        config, commands, _, art = _design_stream(design)
        issue_model = config.issue_model(GEOM)
        sched = CommandScheduler(
            T, GEOM, issue_model, engine="columnar",
            per_bank_pim=config.per_bank_pim,
            data_bus_scope=config.data_bus_scope,
        )
        result = sched.run(commands, columnar=art.columnar)
        validate_trace_columnar(
            result.columnar, T, GEOM, issue_model.port_of_rank,
            per_bank_pim=config.per_bank_pim,
            data_bus_scope=config.data_bus_scope,
        )
        validate_trace(
            result.commands, T, GEOM, issue_model.port_of_rank,
            per_bank_pim=config.per_bank_pim,
            data_bus_scope=config.data_bus_scope,
        )

    @pytest.mark.parametrize("design", list(DesignPoint))
    @pytest.mark.parametrize("shift", [-500, -3, 1 << 40])
    def test_seeded_corruptions_rejected_identically(
        self, design, shift
    ):
        """Corrupting one issue cycle must raise the same
        TimingViolation from both validators (the columnar one falls
        back to the scalar sweep to name the first offender)."""
        config, commands, _, art = _design_stream(design)
        issue_model = config.issue_model(GEOM)
        sched = CommandScheduler(
            T, GEOM, issue_model, engine="columnar",
            per_bank_pim=config.per_bank_pim,
            data_bus_scope=config.data_bus_scope,
        )
        result = sched.run(commands, columnar=art.columnar)
        corrupted = result.columnar.issue_cycle.copy()
        corrupted.setflags(write=True)
        victim = len(corrupted) // 2
        corrupted[victim] = max(0, corrupted[victim] + shift)
        bad = type(result.columnar)(result.columnar.stream, corrupted)
        kwargs = dict(
            per_bank_pim=config.per_bank_pim,
            data_bus_scope=config.data_bus_scope,
        )
        with pytest.raises(TimingViolation) as vectorized:
            validate_trace_columnar(
                bad, T, GEOM, issue_model.port_of_rank, **kwargs
            )
        with pytest.raises(TimingViolation) as scalar:
            validate_trace(
                bad.to_commands(), T, GEOM, issue_model.port_of_rank,
                **kwargs
            )
        assert str(vectorized.value) == str(scalar.value)

    def test_unissued_command_rejected(self):
        config, commands, _, art = _design_stream(DesignPoint.BASELINE)
        issue_model = config.issue_model(GEOM)
        sched = CommandScheduler(
            T, GEOM, issue_model, engine="columnar",
            data_bus_scope=config.data_bus_scope,
        )
        result = sched.run(commands, columnar=art.columnar)
        corrupted = result.columnar.issue_cycle.copy()
        corrupted.setflags(write=True)
        corrupted[0] = -1
        bad = type(result.columnar)(result.columnar.stream, corrupted)
        with pytest.raises(TimingViolation):
            validate_trace_columnar(
                bad, T, GEOM, issue_model.port_of_rank,
                data_bus_scope=config.data_bus_scope,
            )
