"""Timing-parameter tests: presets, derived bandwidths, validation."""

import pytest

from repro.dram.timing import (
    DDR4_2133,
    DDR4_3200,
    HBM_LIKE,
    PRESET_CHANNELS,
    PRESETS,
)
from repro.errors import ConfigError


def test_presets_registered():
    assert set(PRESETS) == {"DDR4-2133", "DDR4-3200", "HBM-like"}


def test_paper_table2_values():
    t = DDR4_2133
    assert t.tCK_ns == 0.94
    assert t.tCL == 16
    assert t.tRCD == 16
    assert t.tRP == 16
    assert t.tRAS == 36
    assert t.tCCD_L == 6
    assert t.tCCD_S == 4
    assert t.tPIM == 5


def test_peak_offchip_bandwidth_matches_paper():
    # The paper quotes 17.1 GB/s as the channel's theoretical maximum.
    assert DDR4_2133.peak_offchip_bandwidth() / 1e9 == pytest.approx(
        17.1, abs=0.15
    )


def test_peak_internal_bandwidth_matches_paper():
    # The paper's Fig. 11 dotted line: 181.28 GB/s for 4 groups x 4 ranks.
    bw = DDR4_2133.peak_internal_bandwidth(4, 4) / 1e9
    assert bw == pytest.approx(181.28, rel=0.01)


def test_per_bankgroup_bandwidth_exceeds_half_offchip():
    # Background §III-B: one bank group alone provides more than half
    # the off-chip bandwidth.
    assert (
        DDR4_2133.per_bankgroup_bandwidth()
        > DDR4_2133.peak_offchip_bandwidth() / 2
    )


def test_trc_is_tras_plus_trp():
    assert DDR4_2133.tRC == DDR4_2133.tRAS + DDR4_2133.tRP


def test_cycles_to_seconds():
    assert DDR4_2133.cycles_to_s(1000) == pytest.approx(940e-9)


def test_clock_hz():
    assert DDR4_2133.clock_hz == pytest.approx(1e9 / 0.94)


def test_data_rate():
    assert DDR4_2133.data_rate_mts == pytest.approx(2127.66, rel=1e-3)


def test_with_overrides_returns_new_instance():
    fast = DDR4_2133.with_overrides(tPIM=3)
    assert fast.tPIM == 3
    assert DDR4_2133.tPIM == 5
    assert fast.tCL == DDR4_2133.tCL


def test_faster_grade_has_shorter_clock():
    assert DDR4_3200.tCK_ns < DDR4_2133.tCK_ns


def test_hbm_like_per_channel_bandwidth():
    # One HBM2 channel: 64 B per BL4 burst (2 cycles at 1 GHz) = 32 GB/s.
    assert HBM_LIKE.peak_offchip_bandwidth() / 1e9 == pytest.approx(32.0)


def test_hbm_like_stack_bandwidth():
    # The full 8-channel stack delivers ~256 GB/s — the real HBM2
    # figure, previously faked by hiding all channels behind one
    # tBURST=1 interface.
    channels = PRESET_CHANNELS[HBM_LIKE.name]
    assert channels == 8
    stack = HBM_LIKE.peak_offchip_bandwidth() * channels
    assert stack / 1e9 == pytest.approx(256.0)
    assert stack > 10 * DDR4_2133.peak_offchip_bandwidth()


def test_preset_channels_cover_every_preset():
    assert set(PRESET_CHANNELS) == set(PRESETS)
    assert PRESET_CHANNELS["DDR4-2133"] == 1


def test_peak_internal_bandwidth_scales_with_channels():
    assert DDR4_2133.peak_internal_bandwidth(
        4, 4, channels=8
    ) == pytest.approx(8 * DDR4_2133.peak_internal_bandwidth(4, 4))


def test_rejects_nonpositive_tck():
    with pytest.raises(ConfigError):
        DDR4_2133.with_overrides(tCK_ns=0.0)


def test_rejects_nonpositive_timing():
    with pytest.raises(ConfigError):
        DDR4_2133.with_overrides(tRAS=0)


def test_rejects_tccd_s_above_tccd_l():
    with pytest.raises(ConfigError):
        DDR4_2133.with_overrides(tCCD_S=8, tCCD_L=6)


def test_rejects_trrd_s_above_trrd_l():
    with pytest.raises(ConfigError):
        DDR4_2133.with_overrides(tRRD_S=10, tRRD_L=6)


def test_rejects_tras_below_trcd():
    with pytest.raises(ConfigError):
        DDR4_2133.with_overrides(tRAS=10, tRCD=16)
