"""Small-stream serial fallback in cross-process channel scheduling.

``BENCH_channels.json`` measured the fork-per-call overhead losing on
update-phase-sized streams (parallel_speedup 0.73x at two channels), so
:func:`repro.dram.parallel.schedule_channels` now falls back to the
serial loop below a commands-per-worker floor — and reports which path
ran, so benchmarks can attribute their timings.
"""

from repro.dram.parallel import (
    PARALLEL_MIN_COMMANDS_PER_WORKER,
    schedule_channels,
)
from repro.dram.scheduler import CommandScheduler, replicate_across_channels
from repro.dram.timing import HBM_LIKE
from repro.optim.precision import PRECISION_8_32
from repro.optim.registry import build_optimizer
from repro.system.design import DESIGNS, DesignPoint
from repro.system.update_model import UpdatePhaseModel

import dataclasses


def _stream(channels=2, columns=8):
    model = UpdatePhaseModel(
        timing=HBM_LIKE, columns_per_stripe=columns
    )
    optimizer = build_optimizer(
        "momentum_sgd", {"eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4}
    )
    config = DESIGNS[DesignPoint.GRADPIM_BUFFERED]
    commands, _, _, dependents, _period, _art = model._build_stream(
        config, optimizer, PRECISION_8_32
    )
    commands, dependents = replicate_across_channels(
        commands, channels, dependents
    )
    geometry = dataclasses.replace(model.geometry, channels=channels)
    scheduler = CommandScheduler(
        HBM_LIKE,
        geometry,
        config.issue_model(geometry),
        per_bank_pim=config.per_bank_pim,
        data_bus_scope=config.data_bus_scope,
    )
    return scheduler, commands, dependents


def test_small_streams_schedule_serially():
    scheduler, commands, dependents = _stream()
    assert len(commands) < PARALLEL_MIN_COMMANDS_PER_WORKER * 2
    info = {}
    result = schedule_channels(
        scheduler, commands, dependents=dependents, workers=2,
        info=info,
    )
    assert info["path"] == "serial-small-stream"
    assert info["min_commands_per_worker"] == (
        PARALLEL_MIN_COMMANDS_PER_WORKER
    )
    # The serial path is the exact same schedule.
    direct = scheduler.run(commands, dependents=dependents)
    assert result.issue_cycles() == direct.issue_cycles()
    assert result.stats == direct.stats


def test_threshold_overridable_and_parallel_path_identical():
    scheduler, commands, dependents = _stream()
    info = {}
    result = schedule_channels(
        scheduler, commands, dependents=dependents, workers=2,
        min_commands_per_worker=0, info=info,
    )
    assert info["path"] in ("parallel", "serial-fork-unavailable")
    assert info["min_commands_per_worker"] == 0
    direct = scheduler.run(commands, dependents=dependents)
    assert result.issue_cycles() == direct.issue_cycles()
    assert result.stats == direct.stats


def test_degenerate_worker_counts_stay_serial():
    scheduler, commands, dependents = _stream()
    info = {}
    schedule_channels(
        scheduler, commands, dependents=dependents, workers=1,
        info=info,
    )
    assert info["path"] == "serial-degenerate"
