"""Trace-inspection utility tests."""

import copy

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.geometry import DeviceGeometry
from repro.dram.scheduler import CommandScheduler, IssueModel
from repro.dram.timing import DDR4_2133
from repro.dram.trace import (
    CSV_HEADER,
    bus_occupancy,
    format_trace,
    trace_to_csv,
)
from repro.errors import SimulationError

GEOM = DeviceGeometry()


@pytest.fixture(scope="module")
def scheduled():
    cmds = [
        Command(CommandType.ACT, row=3, tag="act"),
        Command(CommandType.SCALED_READ, row=3, col=1, deps=(0,),
                tag="sr:x"),
        Command(CommandType.PIM_ADD, deps=(1,)),
        Command(CommandType.WRITEBACK, row=3, col=1, deps=(2,),
                tag="wb,x"),
    ]
    return CommandScheduler(DDR4_2133, GEOM).run(cmds)


def test_format_trace_in_cycle_order(scheduled):
    text = format_trace(scheduled.commands)
    cycles = [int(line.split()[0]) for line in text.splitlines()]
    assert cycles == sorted(cycles)


def test_format_trace_includes_tags_and_rows(scheduled):
    text = format_trace(scheduled.commands)
    assert "[sr:x]" in text
    assert "row=3 col=1" in text


def test_format_trace_limit(scheduled):
    text = format_trace(scheduled.commands, limit=2)
    assert len(text.splitlines()) == 2


def test_csv_shape(scheduled):
    csv = trace_to_csv(scheduled.commands)
    lines = csv.strip().splitlines()
    assert lines[0] == CSV_HEADER
    assert len(lines) == 1 + len(scheduled.commands)
    # Commas inside tags are sanitized.
    assert "wb;x" in csv


def test_bus_occupancy_counts_every_command(scheduled):
    occ = bus_occupancy(scheduled.commands, (0,) * GEOM.ranks)
    assert sum(len(v) for v in occ.values()) == len(scheduled.commands)


def test_bus_occupancy_splits_ports():
    cmds = [
        Command(CommandType.ACT, rank=0, row=0),
        Command(CommandType.ACT, rank=3, row=0),
    ]
    res = CommandScheduler(
        DDR4_2133, GEOM, IssueModel.buffered(GEOM.ranks)
    ).run(copy.deepcopy(cmds))
    occ = bus_occupancy(res.commands, tuple(range(GEOM.ranks)))
    assert set(occ) == {0, 3}


def test_unissued_commands_rejected():
    with pytest.raises(SimulationError):
        format_trace([Command(CommandType.ACT, row=0)])
    with pytest.raises(SimulationError):
        trace_to_csv([Command(CommandType.ACT, row=0)])


class TestRowBufferStats:
    def test_streaming_kernel_is_nearly_all_hits(self):
        """§IV-D: GradPIM's update experiences no row-buffer misses
        beyond opening each row once."""
        from repro.dram.trace import row_buffer_stats
        from repro.kernels.compiler import UpdateKernelCompiler
        from repro.optim import MomentumSGD
        from repro.optim.precision import PRECISION_8_32

        kernel = UpdateKernelCompiler().compile(
            MomentumSGD(eta=0.01, alpha=0.9),
            PRECISION_8_32,
            columns_per_stripe=32,
        )
        stats = row_buffer_stats(kernel.commands)
        assert stats.hit_rate > 0.95
        # One miss per (bank, row) opened, each paired with its ACT.
        assert stats.misses == stats.activations

    def test_alternating_rows_thrash(self):
        from repro.dram.trace import row_buffer_stats

        cmds = []
        for i in range(8):
            row = i % 2
            cmds.append(Command(CommandType.ACT, row=row))
            cmds.append(Command(CommandType.RD, row=row))
            cmds.append(Command(CommandType.PRE, row=row))
        stats = row_buffer_stats(cmds)
        assert stats.hit_rate == 0.0
        assert stats.activations == 8

    def test_empty_stream(self):
        from repro.dram.trace import row_buffer_stats

        stats = row_buffer_stats([])
        assert stats.accesses == 0
        assert stats.hit_rate == 0.0
