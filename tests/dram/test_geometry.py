"""Device-geometry tests."""

import pytest

from repro.dram.geometry import DeviceGeometry, DEFAULT_GEOMETRY
from repro.errors import ConfigError


def test_default_matches_paper():
    g = DEFAULT_GEOMETRY
    assert g.ranks == 4
    assert g.bankgroups == 4
    assert g.banks_per_group == 4
    assert g.column_bytes == 64


def test_bank_counts():
    g = DEFAULT_GEOMETRY
    assert g.banks_per_rank == 16
    assert g.total_banks == 64


def test_columns_per_row():
    assert DEFAULT_GEOMETRY.columns_per_row == 128


def test_capacity_is_8gb_per_rank():
    # 8 chips x 8 Gb = 8 GiB per rank.
    assert DEFAULT_GEOMETRY.rank_bytes == 8 * 1024**3


def test_total_capacity():
    assert DEFAULT_GEOMETRY.total_bytes == 32 * 1024**3


def test_pim_units_one_per_group_per_rank():
    assert DEFAULT_GEOMETRY.pim_units == 16


def test_ranks_per_dimm():
    assert DEFAULT_GEOMETRY.ranks_per_dimm == 2


def test_dimm_of_rank():
    g = DEFAULT_GEOMETRY
    assert [g.dimm_of_rank(r) for r in range(4)] == [0, 0, 1, 1]


def test_rejects_non_pow2_bankgroups():
    with pytest.raises(ConfigError):
        DeviceGeometry(bankgroups=3)


def test_rejects_row_not_multiple_of_column():
    with pytest.raises(ConfigError):
        DeviceGeometry(row_bytes=8192, column_bytes=48)


def test_rejects_zero_ranks():
    with pytest.raises(ConfigError):
        DeviceGeometry(ranks=0)


def test_rejects_ranks_not_divisible_by_dimms():
    with pytest.raises(ConfigError):
        DeviceGeometry(ranks=4, dimms=3)


def test_default_is_single_channel():
    assert DEFAULT_GEOMETRY.channels == 1


def test_channel_aggregates_scale():
    g = DeviceGeometry(channels=8)
    assert g.banks_per_channel == 64
    assert g.total_banks == 8 * 64
    assert g.channel_bytes == DEFAULT_GEOMETRY.total_bytes
    assert g.total_bytes == 8 * DEFAULT_GEOMETRY.total_bytes
    assert g.pim_units_per_channel == 16
    assert g.pim_units == 8 * 16


def test_single_channel_aggregates_unchanged():
    g = DEFAULT_GEOMETRY
    assert g.banks_per_channel == g.total_banks
    assert g.channel_bytes == g.total_bytes
    assert g.pim_units_per_channel == g.pim_units


def test_rejects_bad_channels():
    with pytest.raises(ConfigError):
        DeviceGeometry(channels=0)
    with pytest.raises(ConfigError):
        DeviceGeometry(channels=3)  # power of two required
