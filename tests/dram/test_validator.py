"""Validator tests: seeded violations must be caught.

The validator is an independent re-implementation of the JEDEC rules;
these tests hand-construct traces that break exactly one rule each and
assert the breach is named.
"""

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.geometry import DeviceGeometry
from repro.dram.timing import DDR4_2133
from repro.dram.validator import validate_trace
from repro.errors import TimingViolation

T = DDR4_2133
GEOM = DeviceGeometry()
PORTS = (0, 0, 0, 0)


def _issued(kind, cycle, **kwargs):
    cmd = Command(kind, **kwargs)
    cmd.issue_cycle = cycle
    return cmd


def _legal_pair(row=0):
    """ACT then a legal read."""
    return [
        _issued(CommandType.ACT, 0, row=row),
        _issued(CommandType.SCALED_READ, T.tRCD, row=row),
    ]


def _check(trace, rule):
    """Both checking modes must flag the same seeded violation."""
    for thorough in (False, True):
        with pytest.raises(TimingViolation) as exc:
            validate_trace(trace, T, GEOM, PORTS, thorough=thorough)
        assert exc.value.rule == rule, f"thorough={thorough}"


def test_legal_trace_passes():
    validate_trace(_legal_pair(), T, GEOM, PORTS)
    validate_trace(_legal_pair(), T, GEOM, PORTS, thorough=True)


def test_trcd_violation():
    trace = [
        _issued(CommandType.ACT, 0, row=0),
        _issued(CommandType.SCALED_READ, T.tRCD - 1, row=0),
    ]
    _check(trace, "tRCD")


def test_tras_violation():
    trace = [
        _issued(CommandType.ACT, 0, row=0),
        _issued(CommandType.PRE, T.tRAS - 1, row=0),
    ]
    _check(trace, "tRAS")


def test_trp_violation():
    trace = [
        _issued(CommandType.ACT, 0, row=0),
        _issued(CommandType.PRE, T.tRAS, row=0),
        _issued(CommandType.ACT, T.tRAS + T.tRP - 1, row=1),
    ]
    _check(trace, "tRP")


def test_trtp_violation():
    read_cycle = T.tRAS  # late enough that tRAS is already satisfied
    trace = [
        _issued(CommandType.ACT, 0, row=0),
        _issued(CommandType.SCALED_READ, read_cycle, row=0),
        _issued(CommandType.PRE, read_cycle + T.tRTP - 1, row=0),
    ]
    _check(trace, "tRTP")


def test_twr_violation():
    wb_cycle = T.tRAS  # tRAS satisfied so only tWR can fire
    trace = [
        _issued(CommandType.ACT, 0, row=0),
        _issued(CommandType.WRITEBACK, wb_cycle, row=0),
        _issued(
            CommandType.PRE, wb_cycle + T.tBURST + T.tWR - 1, row=0
        ),
    ]
    _check(trace, "tWR")


def test_row_match_violation():
    trace = [
        _issued(CommandType.ACT, 0, row=0),
        _issued(CommandType.SCALED_READ, T.tRCD, row=5),
    ]
    _check(trace, "row-match")


def test_act_on_open_bank():
    trace = [
        _issued(CommandType.ACT, 0, row=0),
        _issued(CommandType.ACT, T.tRRD_L, row=1),
    ]
    _check(trace, "ACT-open")


def test_pre_closed_bank():
    _check([_issued(CommandType.PRE, 0, row=0)], "PRE-closed")


def test_tccd_l_violation():
    trace = [
        _issued(CommandType.ACT, 0, row=0, bank=0),
        _issued(CommandType.ACT, T.tRRD_L, row=0, bank=1),
        _issued(CommandType.SCALED_READ, 40, row=0, bank=0),
        _issued(
            CommandType.SCALED_READ, 40 + T.tCCD_L - 1, row=0, bank=1
        ),
    ]
    _check(trace, "tCCD_L")


def test_tpim_violation():
    trace = [
        _issued(CommandType.PIM_ADD, 0),
        _issued(CommandType.PIM_SUB, T.tPIM - 1),
    ]
    _check(trace, "tPIM")


def test_trrd_violation():
    trace = [
        _issued(CommandType.ACT, 0, row=0, bankgroup=0),
        _issued(CommandType.ACT, T.tRRD_S - 1, row=0, bankgroup=1),
    ]
    _check(trace, "tRRD")


def test_tfaw_violation():
    trace = []
    cycle = 0
    for i in range(4):
        trace.append(
            _issued(CommandType.ACT, cycle, row=0, bankgroup=i)
        )
        cycle += T.tRRD_S
    trace.append(
        _issued(CommandType.ACT, T.tFAW - 1, row=0, bankgroup=0, bank=1)
    )
    _check(trace, "tFAW")


def test_tccd_s_violation():
    trace = [
        _issued(CommandType.ACT, 0, row=0, bankgroup=0),
        _issued(CommandType.ACT, T.tRRD_S, row=0, bankgroup=1),
        _issued(CommandType.RD, 40, row=0, bankgroup=0),
        _issued(CommandType.RD, 40 + T.tCCD_S - 1, row=0, bankgroup=1),
    ]
    _check(trace, "tCCD_S")


def test_twtr_l_violation():
    wb = T.tRCD
    trace = [
        _issued(CommandType.ACT, 0, row=0, bank=0),
        _issued(CommandType.ACT, T.tRRD_L, row=0, bank=1),
        _issued(CommandType.WRITEBACK, wb, row=0, bank=0),
        _issued(
            CommandType.SCALED_READ,
            wb + T.tCCD_L,  # satisfies tCCD_L but not tWTR_L
            row=0,
            bank=1,
        ),
    ]
    _check(trace, "tWTR_L")


def test_command_bus_violation():
    trace = [
        _issued(CommandType.ACT, 0, row=0, rank=0, bankgroup=0),
        _issued(CommandType.ACT, 0, row=0, rank=1, bankgroup=0),
    ]
    _check(trace, "command-bus")


def test_dependency_violation():
    a = _issued(CommandType.ACT, 0, row=0)
    b = _issued(CommandType.SCALED_READ, T.tRCD - 2, row=0)
    b.deps = (0,)
    # Dependency check fires on completion, independent of tRCD.
    with pytest.raises(TimingViolation):
        validate_trace([a, b], T, GEOM, PORTS)


def test_data_bus_overlap_violation():
    trace = [
        _issued(CommandType.ACT, 0, row=0, bankgroup=0),
        _issued(CommandType.ACT, T.tRRD_S, row=0, bankgroup=1),
        _issued(CommandType.RD, 40, row=0, bankgroup=0),
        # tCCD_S satisfied (4), but burst data (4 cycles) still overlaps
        # at spacing < tBURST when tCCD_S == tBURST; force overlap with
        # a rank switch requiring a gap.
        _issued(
            CommandType.RD, 40 + T.tBURST, row=0, rank=1, bankgroup=0
        ),
    ]
    trace.insert(
        2, _issued(CommandType.ACT, 2 * T.tRRD_S, row=0, rank=1)
    )
    _check(trace, "data-bus")


def test_unissued_command_rejected():
    cmd = Command(CommandType.ACT, row=0)
    with pytest.raises(TimingViolation):
        validate_trace([cmd], T, GEOM, PORTS)


class TestModeEquivalence:
    """Fused sweep and thorough checker agree on real traces."""

    def _scheduled(self, design):
        from repro.dram.scheduler import CommandScheduler
        from repro.optim.registry import build_optimizer
        from repro.optim.precision import PRECISION_8_32
        from repro.system.design import DESIGNS
        from repro.system.update_model import UpdatePhaseModel

        model = UpdatePhaseModel(columns_per_stripe=8)
        optimizer = build_optimizer(
            "momentum_sgd",
            {"eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4},
        )
        config = DESIGNS[design]
        commands, _, _, deps, _period, _art = model._build_stream(
            config, optimizer, PRECISION_8_32
        )
        issue_model = config.issue_model(model.geometry)
        result = CommandScheduler(
            model.timing, model.geometry, issue_model,
            per_bank_pim=config.per_bank_pim,
            data_bus_scope=config.data_bus_scope,
        ).run(commands, dependents=deps)
        return config, issue_model, result

    def test_all_design_traces_pass_both_modes(self):
        from repro.system.design import DesignPoint

        for design in DesignPoint:
            config, issue_model, result = self._scheduled(design)
            for thorough in (False, True):
                validate_trace(
                    result.commands,
                    T,
                    GEOM,
                    issue_model.port_of_rank,
                    per_bank_pim=config.per_bank_pim,
                    data_bus_scope=config.data_bus_scope,
                    thorough=thorough,
                )

    def test_corrupted_trace_fails_both_modes(self):
        from repro.system.design import DesignPoint

        _, issue_model, result = self._scheduled(
            DesignPoint.GRADPIM_BUFFERED
        )
        # Pull one mid-trace command several cycles earlier: some rule
        # (which one depends on the command) must fire in both modes.
        victim = result.commands[len(result.commands) // 2]
        victim.issue_cycle = max(victim.issue_cycle - 3, 0)
        for thorough in (False, True):
            with pytest.raises(TimingViolation):
                validate_trace(
                    result.commands,
                    T,
                    GEOM,
                    issue_model.port_of_rank,
                    data_bus_scope="channel",
                    thorough=thorough,
                )

    def test_bad_scope_rejected_in_both_modes(self):
        for thorough in (False, True):
            with pytest.raises(TimingViolation):
                validate_trace(
                    _legal_pair(), T, GEOM, PORTS,
                    data_bus_scope="hyperbus", thorough=thorough,
                )
