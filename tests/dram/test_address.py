"""Address-mapping tests: bijectivity and the Fig. 7 placement invariant."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import AddressMapping, DecodedAddress
from repro.dram.geometry import DeviceGeometry
from repro.errors import AddressError


@pytest.fixture(scope="module")
def mapping():
    return AddressMapping(DeviceGeometry())


def test_capacity_matches_geometry(mapping):
    assert mapping.capacity == DeviceGeometry().total_bytes


def test_address_zero(mapping):
    d = mapping.decode(0)
    assert (d.rank, d.bankgroup, d.bank, d.row, d.col, d.byte) == (
        0, 0, 0, 0, 0, 0,
    )


def test_consecutive_row_chunks_stripe_bankgroups(mapping):
    # Fig. 7: the bank-group bits sit right above the column bits, so
    # consecutive 8 KiB chunks land in successive bank groups.
    g = mapping.geometry
    first = mapping.decode(0)
    second = mapping.decode(g.row_bytes)
    assert second.bankgroup == (first.bankgroup + 1) % g.bankgroups
    assert second.bank == first.bank
    assert second.row == first.row


def test_rank_bits_above_bankgroup(mapping):
    g = mapping.geometry
    d = mapping.decode(g.row_bytes * g.bankgroups)
    assert d.rank == 1
    assert d.bankgroup == 0
    assert d.row == 0


def test_bank_bits_at_msb(mapping):
    # The bank id owns the top bits: each bank is one contiguous region.
    base = mapping.bank_base(1)
    d = mapping.decode(base)
    assert d.bank == 1
    assert (d.rank, d.bankgroup, d.row, d.col) == (0, 0, 0, 0)


def test_bank_region_bytes(mapping):
    assert (
        mapping.bank_region_bytes * mapping.geometry.banks_per_group
        == mapping.capacity
    )


@given(st.integers(min_value=0, max_value=DeviceGeometry().total_bytes - 1))
@settings(max_examples=300)
def test_decode_encode_roundtrip(addr):
    mapping = AddressMapping(DeviceGeometry())
    assert mapping.encode(mapping.decode(addr)) == addr


@given(
    st.integers(min_value=0, max_value=2**20),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=200)
def test_placement_invariant(offset, bank_a, bank_b):
    """Matching offsets of bank-aligned arrays share (rank, group, row,
    col) — the §V-B requirement — whenever banks differ."""
    mapping = AddressMapping(DeviceGeometry())
    offset = (offset // 64) * 64  # column aligned
    a = mapping.element_coords(bank_a, offset)
    b = mapping.element_coords(bank_b, offset)
    assert a.rank == b.rank
    assert a.bankgroup == b.bankgroup
    assert a.row == b.row
    assert a.col == b.col
    if bank_a != bank_b:
        assert a.same_group_different_bank(b)
    else:
        assert not a.same_group_different_bank(b)


def test_decode_rejects_out_of_range(mapping):
    with pytest.raises(AddressError):
        mapping.decode(mapping.capacity)


def test_decode_rejects_negative(mapping):
    with pytest.raises(AddressError):
        mapping.decode(-1)


def test_encode_rejects_bad_fields(mapping):
    with pytest.raises(AddressError):
        mapping.encode(
            DecodedAddress(rank=9, bankgroup=0, bank=0, row=0, col=0, byte=0)
        )
    with pytest.raises(AddressError):
        mapping.encode(
            DecodedAddress(rank=0, bankgroup=0, bank=0, row=0, col=999,
                           byte=0)
        )


def test_bank_base_rejects_out_of_range(mapping):
    with pytest.raises(AddressError):
        mapping.bank_base(4)


def test_small_geometry_roundtrip():
    g = DeviceGeometry(ranks=2, rows=64, dimms=2)
    m = AddressMapping(g)
    for addr in range(0, m.capacity, m.capacity // 97):
        assert m.encode(m.decode(addr)) == addr


# ----------------------------------------------------------------------
# Channel bits
# ----------------------------------------------------------------------
_MULTI = DeviceGeometry(rows=256, channels=8)


def test_single_channel_mapping_is_bit_identical():
    """Zero channel bits: the multi-channel codec reproduces the
    historical single-channel mapping exactly."""
    g1 = DeviceGeometry()
    m = AddressMapping(g1)
    for addr in range(0, m.capacity, m.capacity // 101):
        d = m.decode(addr)
        assert d.channel == 0
        assert m.encode(d) == addr


def test_channel_bits_above_rank_below_row():
    m = AddressMapping(_MULTI)
    g = _MULTI
    one_channel = g.row_bytes * g.bankgroups * g.ranks
    d = m.decode(one_channel)
    assert (d.channel, d.rank, d.bankgroup, d.row, d.bank) == (
        1, 0, 0, 0, 0,
    )
    d = m.decode(one_channel * g.channels)  # wraps into the row bits
    assert (d.channel, d.row) == (0, 1)


@given(
    st.integers(min_value=0, max_value=_MULTI.total_bytes - 1),
)
@settings(max_examples=300)
def test_decode_encode_roundtrip_with_channels(addr):
    """The codec stays a bijection over the full geometry including
    the channel bits."""
    mapping = AddressMapping(_MULTI)
    decoded = mapping.decode(addr)
    assert 0 <= decoded.channel < _MULTI.channels
    assert mapping.encode(decoded) == addr


@given(
    channels=st.sampled_from([1, 2, 4, 8]),
    ranks=st.sampled_from([1, 2, 4]),
    seed=st.integers(min_value=0, max_value=2**30),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_bijection_across_geometries(channels, ranks, seed):
    g = DeviceGeometry(
        rows=128, ranks=ranks, dimms=min(ranks, 2), channels=channels
    )
    m = AddressMapping(g)
    addr = seed % g.total_bytes
    assert m.encode(m.decode(addr)) == addr
    # Distinct addresses stay distinct through decode (injectivity on a
    # stratified probe around the channel-bit boundaries).
    step = g.row_bytes * g.bankgroups * g.ranks
    coords = {
        m.decode((addr + k * step) % g.total_bytes)
        for k in range(channels + 1)
    }
    probes = {(addr + k * step) % g.total_bytes for k in range(channels + 1)}
    assert len(coords) == len(probes)


@given(
    st.integers(min_value=0, max_value=2**22),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=200)
def test_placement_invariant_holds_within_every_channel(
    offset, bank_a, bank_b
):
    """§V-B with channel bits: matching offsets of bank-aligned arrays
    (theta/v/g) share (channel, rank, group, row, col), so the GradPIM
    register-sharing invariant holds inside whichever channel the
    elements land in."""
    mapping = AddressMapping(_MULTI)
    offset = (offset // 64) * 64  # column aligned
    a = mapping.element_coords(bank_a, offset)
    b = mapping.element_coords(bank_b, offset)
    assert a.channel == b.channel
    assert a.rank == b.rank
    assert a.bankgroup == b.bankgroup
    assert a.row == b.row
    assert a.col == b.col
    if bank_a != bank_b:
        assert a.same_group_different_bank(b)
    else:
        assert not a.same_group_different_bank(b)


def test_invariant_requires_same_channel():
    a = DecodedAddress(
        rank=0, bankgroup=1, bank=0, row=0, col=0, byte=0, channel=0
    )
    b = DecodedAddress(
        rank=0, bankgroup=1, bank=1, row=0, col=0, byte=0, channel=1
    )
    assert not a.same_group_different_bank(b)


def test_encode_rejects_bad_channel():
    m = AddressMapping(_MULTI)
    with pytest.raises(AddressError):
        m.encode(
            DecodedAddress(
                rank=0, bankgroup=0, bank=0, row=0, col=0, byte=0,
                channel=_MULTI.channels,
            )
        )
