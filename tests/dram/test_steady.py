"""Periodic steady-state engine == incremental engine, byte for byte.

The ``"periodic"`` engine (:mod:`repro.dram.steady`) promises *exact*
equivalence with the incremental engine: identical issue cycles and
identical :class:`TraceStats` on every stream — locked steady-state
sweeps are replayed arithmetically, everything else (and everything
that never locks) simulates for real. These tests enforce the contract:

* golden checks over every design point x optimizer x precision at
  several windows and sample widths, asserting both equivalence and
  that the fast path actually engages where the streams are periodic;
* period-metadata honesty: every segment a generator reports really is
  shape-periodic, and a wider sample is the same stream with extra
  body sweeps (the property the profile-level extrapolation rests on);
* perturbation: streams edited to *break* the advertised periodicity
  (spliced commands, stripped dependencies, stale metadata) must fall
  back to plain simulation and still match the incremental engine;
* Hypothesis sweeps over (design, optimizer, precision, window,
  columns_per_stripe).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.commands import Command, CommandType
from repro.dram.scheduler import CommandScheduler, _fresh_copy
from repro.dram.steady import (
    PeriodSegment,
    SegmentRecorder,
    StreamPeriod,
    schedule_steady,
    stale_floor,
)
from repro.dram.timing import DDR4_2133, PRESETS
from repro.errors import ConfigError
from repro.optim.precision import PRECISIONS
from repro.optim.registry import build_optimizer
from repro.system.design import (
    DESIGNS,
    DesignPoint,
    UPDATE_PIM_KERNEL,
)
from repro.system.update_model import UpdatePhaseModel

T = DDR4_2133
GEOM = UpdatePhaseModel().geometry

OPTIMIZER_PARAMS = {
    "momentum_sgd": {"eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4},
    "sgd": {},
    "rmsprop": {},
}


def _built(design, optimizer_name="momentum_sgd", precision="8/32",
           columns=16):
    model = UpdatePhaseModel(
        columns_per_stripe=columns, extended_alu=True
    )
    optimizer = build_optimizer(
        optimizer_name, OPTIMIZER_PARAMS.get(optimizer_name, {})
    )
    config = DESIGNS[design]
    commands, _, _, dependents, period, _art = model._build_stream(
        config, optimizer, PRECISIONS[precision]
    )
    return config, commands, dependents, period


def _run_both(config, commands, dependents, period, window=16):
    results = {}
    for engine in ("incremental", "periodic"):
        sched = CommandScheduler(
            T,
            GEOM,
            config.issue_model(GEOM),
            per_bank_pim=config.per_bank_pim,
            window=window,
            data_bus_scope=config.data_bus_scope,
            engine=engine,
        )
        results[engine] = sched.run(
            commands, dependents=dependents, period=period
        )
    inc, per = results["incremental"], results["periodic"]
    assert inc.issue_cycles() == per.issue_cycles()
    assert inc.stats == per.stats
    return per


class TestGoldenEquivalence:
    @pytest.mark.parametrize("design", list(DesignPoint))
    @pytest.mark.parametrize("window", [4, 16])
    def test_identical_per_design(self, design, window):
        config, commands, dependents, period = _built(
            design, columns=16
        )
        _run_both(config, commands, dependents, period, window=window)

    @pytest.mark.parametrize(
        "optimizer_name", ["sgd", "momentum_sgd", "rmsprop"]
    )
    @pytest.mark.parametrize("precision", ["8/32", "16/32", "32/32"])
    def test_identical_per_workload(self, optimizer_name, precision):
        for design in (
            DesignPoint.GRADPIM_DIRECT,
            DesignPoint.GRADPIM_BUFFERED,
        ):
            config, commands, dependents, period = _built(
                design, optimizer_name, precision, columns=16
            )
            _run_both(config, commands, dependents, period)

    def test_fast_path_engages_on_periodic_streams(self):
        """The point of the engine: on the real PIM kernels at a full
        row sample, locked sweeps are replayed, not simulated."""
        config, commands, dependents, period = _built(
            DesignPoint.GRADPIM_BUFFERED, columns=64
        )
        result = _run_both(config, commands, dependents, period)
        assert result.periodic is not None
        assert result.periodic.engaged
        assert result.periodic.skipped > len(commands) // 4
        assert any(lock is not None for lock in result.periodic.locks)

    def test_without_metadata_degrades_to_incremental(self):
        config, commands, dependents, _ = _built(
            DesignPoint.GRADPIM_DIRECT
        )
        result = _run_both(config, commands, dependents, period=None)
        assert result.periodic is not None
        assert not result.periodic.engaged
        assert result.periodic.reason == "no-period-metadata"


# ----------------------------------------------------------------------
# Period-metadata honesty
# ----------------------------------------------------------------------
def _static_shape(cmd: Command):
    return (cmd.kind, cmd.rank, cmd.bankgroup, cmd.bank, cmd.row,
            cmd.channel)


class TestMetadataHonesty:
    @pytest.mark.parametrize("design", list(DesignPoint))
    def test_segments_are_shape_periodic(self, design):
        _, commands, _, period = _built(design, columns=16)
        assert period is not None and period.segments
        for seg in period.segments:
            assert (seg.end - seg.start) % seg.period == 0
            template = [
                _static_shape(c)
                for c in commands[seg.start : seg.start + seg.period]
            ]
            for s in range(1, seg.sweeps):
                lo = seg.start + s * seg.period
                sweep = [
                    _static_shape(c)
                    for c in commands[lo : lo + seg.period]
                ]
                assert sweep == template

    @pytest.mark.parametrize("design", list(DesignPoint))
    def test_wider_sample_adds_whole_sweeps(self, design):
        """A wider sample is the same stream with more body sweeps —
        the structural basis of profile-level extrapolation."""
        _, small_cmds, _, small = _built(design, columns=12)
        _, big_cmds, _, big = _built(design, columns=20)
        assert len(small.segments) == len(big.segments)
        for a, b in zip(small.segments, big.segments):
            assert a.period == b.period
            assert a.columns_per_sweep == b.columns_per_sweep
            extra = (20 - 12) // a.columns_per_sweep
            assert b.sweeps - a.sweeps == extra
            # Sweep bodies are shape-identical across widths.
            assert [
                _static_shape(c)
                for c in small_cmds[a.start : a.start + a.period]
            ] == [
                _static_shape(c)
                for c in big_cmds[b.start : b.start + b.period]
            ]

    def test_full_array_streams_carry_no_metadata(self):
        from repro.kernels.compiler import UpdateKernelCompiler

        optimizer = build_optimizer("momentum_sgd",
                                    OPTIMIZER_PARAMS["momentum_sgd"])
        kernel = UpdateKernelCompiler(GEOM).compile(
            optimizer, PRECISIONS["8/32"], n_params=4096
        )
        assert kernel.period is None


class TestSegmentRecorder:
    def test_uniform_suffix_detection(self):
        rec = SegmentRecorder(columns=8)
        rec.begin(1, 0)
        for pos in (0, 12, 20, 28, 36):  # first sweep longer (12)
            rec.sweep(pos)
        period = rec.finish(44)
        (seg,) = period.segments
        assert (seg.start, seg.end, seg.period) == (12, 44, 8)
        assert seg.sweeps == 4

    def test_short_segments_dropped(self):
        rec = SegmentRecorder(columns=4)
        rec.begin(1, 0)
        rec.sweep(0)
        rec.sweep(10)  # only one uniform sweep at the tail
        period = rec.finish(14)
        assert period.segments == ()

    def test_validation(self):
        with pytest.raises(ConfigError):
            PeriodSegment(start=0, end=10, period=3)
        with pytest.raises(ConfigError):
            StreamPeriod(
                segments=(
                    PeriodSegment(start=10, end=20, period=5),
                    PeriodSegment(start=15, end=25, period=5),
                ),
                columns=4,
            )


# ----------------------------------------------------------------------
# Perturbations: broken periodicity must fall back, exactly.
# ----------------------------------------------------------------------
def _splice(commands, position, extra: Command):
    """Insert ``extra`` at ``position`` with dependency indices of all
    later commands remapped — a legal stream whose advertised period
    metadata is now stale."""
    out = []
    for i, cmd in enumerate(commands):
        copy = _fresh_copy(cmd)
        if cmd.deps:
            copy.deps = tuple(
                d + 1 if d >= position else d for d in cmd.deps
            )
        out.append(copy)
    out.insert(position, extra)
    return out


class TestPerturbedStreams:
    def _pim_stream(self):
        return _built(DesignPoint.GRADPIM_DIRECT, columns=16)

    def test_spliced_command_breaks_lock_not_exactness(self):
        config, commands, dependents, period = self._pim_stream()
        seg = max(period.segments, key=lambda s: s.end - s.start)
        middle = seg.start + (seg.sweeps // 2) * seg.period
        extra = Command(CommandType.MRW, rank=0, scale_id=1,
                        tag="perturb")
        perturbed = _splice(commands, middle, extra)
        result = _run_both(config, perturbed, None, period)
        # The spliced segment must not have been extrapolated across
        # the perturbation point (shape check or fingerprints refuse).
        assert result.issue_cycles()[middle] >= 0

    def test_stripped_dependencies_stay_exact(self):
        config, commands, dependents, period = self._pim_stream()
        seg = period.segments[-1]
        target = seg.start + seg.period + 1
        stripped = [_fresh_copy(c) for c in commands]
        stripped[target].deps = ()
        _run_both(config, stripped, None, period)

    def test_wrong_period_metadata_stays_exact(self):
        config, commands, dependents, period = self._pim_stream()
        # Claim a period that is off by one command: shape checks and
        # state fingerprints must refuse to lock, falling back to
        # plain simulation.
        bad = StreamPeriod(
            segments=tuple(
                PeriodSegment(
                    start=s.start,
                    end=s.start
                    + ((s.end - s.start) // (s.period + 1))
                    * (s.period + 1),
                    period=s.period + 1,
                    columns_per_sweep=s.columns_per_sweep,
                )
                for s in period.segments
            ),
            columns=period.columns,
        )
        result = _run_both(config, commands, dependents, bad)
        assert not result.periodic.engaged or result.periodic.skipped


# ----------------------------------------------------------------------
# Hypothesis sweeps
# ----------------------------------------------------------------------
@st.composite
def _workload(draw):
    design = draw(st.sampled_from(list(DesignPoint)))
    optimizer = draw(
        st.sampled_from(["sgd", "momentum_sgd", "rmsprop"])
    )
    precision = draw(st.sampled_from(["8/32", "16/32", "32/32"]))
    window = draw(st.sampled_from([2, 8, 16, 32]))
    columns = draw(st.sampled_from([4, 8, 12, 16, 24]))
    return design, optimizer, precision, window, columns


class TestHypothesisEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(_workload())
    def test_periodic_matches_incremental(self, workload):
        design, optimizer, precision, window, columns = workload
        config, commands, dependents, period = _built(
            design, optimizer, precision, columns
        )
        _run_both(config, commands, dependents, period, window=window)

    @settings(max_examples=10, deadline=None)
    @given(
        _workload(),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_perturbed_streams_match(self, workload, seed):
        design, optimizer, precision, window, columns = workload
        config, commands, dependents, period = _built(
            design, optimizer, precision, columns
        )
        position = seed % len(commands)
        extra = Command(
            CommandType.MRW, rank=seed % GEOM.ranks,
            scale_id=1 + seed % 3, tag="fuzz",
        )
        perturbed = _splice(commands, position, extra)
        _run_both(config, perturbed, None, period, window=window)


def test_stale_floor_positive():
    for timing in PRESETS.values():
        assert stale_floor(timing) > 0
