"""Bank / bank-group / rank / data-bus state-machine rules."""

import pytest

from repro.dram.bank import BankState
from repro.dram.bankgroup import BankGroupState
from repro.dram.channel import DataBusState, TURNAROUND_GAP
from repro.dram.commands import Command, CommandType
from repro.dram.rank import RankState
from repro.dram.timing import DDR4_2133
from repro.errors import SimulationError

T = DDR4_2133


def _act(row=0, bg=0, bank=0, rank=0):
    return Command(CommandType.ACT, rank=rank, bankgroup=bg, bank=bank,
                   row=row)


def _cmd(kind, row=0, col=0, bg=0, bank=0, rank=0):
    return Command(kind, rank=rank, bankgroup=bg, bank=bank, row=row,
                   col=col)


# ----------------------------------------------------------------------
class TestBankState:
    def test_act_then_column_waits_trcd(self):
        b = BankState(T)
        b.apply(_act(row=7), 0)
        assert b.earliest(_cmd(CommandType.RD, row=7)) == T.tRCD

    def test_act_then_pre_waits_tras(self):
        b = BankState(T)
        b.apply(_act(row=7), 0)
        assert b.earliest(_cmd(CommandType.PRE, row=7)) == T.tRAS

    def test_pre_then_act_waits_trp(self):
        b = BankState(T)
        b.apply(_act(row=7), 0)
        b.apply(_cmd(CommandType.PRE, row=7), 100)
        assert b.earliest(_act(row=8)) == 100 + T.tRP

    def test_read_extends_pre_by_trtp(self):
        b = BankState(T)
        b.apply(_act(row=7), 0)
        b.apply(_cmd(CommandType.SCALED_READ, row=7), 50)
        assert b.earliest(_cmd(CommandType.PRE, row=7)) == 50 + T.tRTP

    def test_write_extends_pre_by_twr(self):
        b = BankState(T)
        b.apply(_act(row=7), 0)
        b.apply(_cmd(CommandType.WR, row=7), 50)
        expected = 50 + T.tCWL + T.tBURST + T.tWR
        assert b.earliest(_cmd(CommandType.PRE, row=7)) == expected

    def test_writeback_has_no_cwl_delay(self):
        b = BankState(T)
        b.apply(_act(row=7), 0)
        b.apply(_cmd(CommandType.WRITEBACK, row=7), 50)
        expected = 50 + T.tBURST + T.tWR
        assert b.earliest(_cmd(CommandType.PRE, row=7)) == expected

    def test_qreg_store_behaves_like_writeback(self):
        b = BankState(T)
        b.apply(_act(row=7), 0)
        b.apply(_cmd(CommandType.QREG_STORE, row=7), 50)
        expected = 50 + T.tBURST + T.tWR
        assert b.earliest(_cmd(CommandType.PRE, row=7)) == expected

    def test_act_on_open_bank_is_structural_error(self):
        b = BankState(T)
        b.apply(_act(row=7), 0)
        with pytest.raises(SimulationError):
            b.earliest(_act(row=8))

    def test_column_to_closed_bank_is_structural_error(self):
        b = BankState(T)
        with pytest.raises(SimulationError):
            b.earliest(_cmd(CommandType.RD, row=7))

    def test_column_to_wrong_row_is_structural_error(self):
        b = BankState(T)
        b.apply(_act(row=7), 0)
        with pytest.raises(SimulationError):
            b.earliest(_cmd(CommandType.RD, row=8))

    def test_pre_on_closed_bank_is_structural_error(self):
        b = BankState(T)
        with pytest.raises(SimulationError):
            b.earliest(_cmd(CommandType.PRE))

    def test_alu_commands_ignore_bank(self):
        b = BankState(T)
        assert b.earliest(_cmd(CommandType.PIM_ADD)) == 0


# ----------------------------------------------------------------------
class TestBankGroupState:
    def test_column_accesses_spaced_tccd_l(self):
        g = BankGroupState(T, banks_per_group=4)
        g.apply(_cmd(CommandType.SCALED_READ), 10)
        assert g.earliest(_cmd(CommandType.WRITEBACK, bank=2)) == (
            10 + T.tCCD_L
        )

    def test_alu_spaced_tpim(self):
        g = BankGroupState(T, banks_per_group=4)
        g.apply(_cmd(CommandType.PIM_ADD), 10)
        assert g.earliest(_cmd(CommandType.PIM_SUB)) == 10 + T.tPIM

    def test_alu_does_not_block_column(self):
        # §IV-C: tPIM "does not interfere with any other commands".
        g = BankGroupState(T, banks_per_group=4)
        g.apply(_cmd(CommandType.PIM_ADD), 10)
        assert g.earliest(_cmd(CommandType.SCALED_READ)) == 0

    def test_column_does_not_block_alu(self):
        g = BankGroupState(T, banks_per_group=4)
        g.apply(_cmd(CommandType.SCALED_READ), 10)
        assert g.earliest(_cmd(CommandType.PIM_ADD)) == 0

    def test_writeback_to_read_turnaround(self):
        g = BankGroupState(T, banks_per_group=4)
        g.apply(_cmd(CommandType.WRITEBACK), 10)
        expected = 10 + T.tBURST + T.tWTR_L
        assert g.earliest(_cmd(CommandType.SCALED_READ, bank=1)) == (
            max(expected, 10 + T.tCCD_L)
        )

    def test_per_bank_pim_decouples_banks(self):
        g = BankGroupState(T, banks_per_group=4, per_bank_pim=True)
        g.apply(_cmd(CommandType.SCALED_READ, bank=0), 10)
        # A different bank's unit is free immediately (AoS-PB).
        assert g.earliest(_cmd(CommandType.SCALED_READ, bank=1)) == 0
        # The same bank still honours tCCD_L.
        assert g.earliest(_cmd(CommandType.SCALED_READ, bank=0)) == (
            10 + T.tCCD_L
        )

    def test_per_bank_pim_alu_per_bank(self):
        g = BankGroupState(T, banks_per_group=4, per_bank_pim=True)
        g.apply(_cmd(CommandType.PIM_ADD, bank=0), 10)
        assert g.earliest(_cmd(CommandType.PIM_ADD, bank=1)) == 0
        assert g.earliest(_cmd(CommandType.PIM_ADD, bank=0)) == 10 + T.tPIM


# ----------------------------------------------------------------------
class TestRankState:
    def test_acts_spaced_trrd_s_across_groups(self):
        r = RankState(T)
        r.apply(_act(bg=0), 10)
        assert r.earliest(_act(bg=1)) == 10 + T.tRRD_S

    def test_acts_spaced_trrd_l_same_group(self):
        r = RankState(T)
        r.apply(_act(bg=0), 10)
        assert r.earliest(_act(bg=0, bank=1)) == 10 + T.tRRD_L

    def test_tfaw_limits_four_acts(self):
        r = RankState(T)
        for i in range(4):
            r.apply(_act(bg=i), i * T.tRRD_S)
        fifth = r.earliest(_act(bg=0, bank=1))
        assert fifth >= T.tFAW

    def test_external_columns_spaced_tccd_s(self):
        r = RankState(T)
        r.apply(_cmd(CommandType.RD), 10)
        assert r.earliest(_cmd(CommandType.RD, bg=1)) == 10 + T.tCCD_S

    def test_internal_columns_not_rank_constrained(self):
        # The decoupling at the heart of GradPIM: scaled reads never
        # touch the global I/O gating.
        r = RankState(T)
        r.apply(_cmd(CommandType.RD), 10)
        assert r.earliest(_cmd(CommandType.SCALED_READ, bg=1)) == 0

    def test_write_to_read_turnaround_twtr_s(self):
        r = RankState(T)
        r.apply(_cmd(CommandType.WR), 10)
        expected = 10 + T.tCWL + T.tBURST + T.tWTR_S
        assert r.earliest(_cmd(CommandType.RD, bg=1)) == max(
            expected, 10 + T.tCCD_S
        )


# ----------------------------------------------------------------------
class TestDataBus:
    def test_back_to_back_reads_same_rank(self):
        bus = DataBusState(T)
        bus.apply(_cmd(CommandType.RD), 0)
        nxt = bus.earliest(_cmd(CommandType.RD))
        # Data of the second read must start right after the first burst.
        assert nxt == T.tBURST

    def test_rank_switch_penalty(self):
        bus = DataBusState(T)
        bus.apply(_cmd(CommandType.RD, rank=0), 0)
        nxt = bus.earliest(_cmd(CommandType.RD, rank=1))
        assert nxt == T.tBURST + T.rank_switch_penalty

    def test_direction_turnaround(self):
        bus = DataBusState(T)
        bus.apply(_cmd(CommandType.RD), 0)
        nxt = bus.earliest(_cmd(CommandType.WR))
        # WR issue so its data (at +tCWL) clears the RD burst + gap.
        assert nxt == T.tCL + T.tBURST + TURNAROUND_GAP - T.tCWL

    def test_internal_commands_ignore_bus(self):
        bus = DataBusState(T)
        bus.apply(_cmd(CommandType.RD), 0)
        assert bus.earliest(_cmd(CommandType.SCALED_READ)) == 0
