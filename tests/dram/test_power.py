"""Energy-model tests: formula sanity and the orderings the paper uses."""

import pytest

from repro.dram.currents import DDR4_2133_CURRENTS
from repro.dram.power import EnergyBreakdown, EnergyModel
from repro.dram.timing import DDR4_2133
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


def test_all_event_energies_positive(model):
    assert model.act_pre_energy() > 0
    assert model.external_read_energy() > 0
    assert model.external_write_energy() > 0
    assert model.internal_access_energy() > 0
    assert model.pim_alu_energy() > 0
    assert model.pim_quant_energy() > 0
    assert model.scaler_energy() > 0


def test_internal_access_cheaper_than_external(model):
    """The core energy argument: a bank-group-confined access (IDDpre)
    costs less than a full off-chip read/write."""
    assert model.internal_access_energy() < model.external_read_energy()
    assert model.internal_access_energy() < model.external_write_energy()


def test_internal_access_saves_more_than_half(model):
    # IDDpre (98 mA) vs IDD4R (225 mA) plus saved I/O: at least 2x.
    assert (
        model.external_read_energy()
        > 2 * model.internal_access_energy()
    )


def test_pim_alu_orders_of_magnitude_below_access(model):
    """Why the PIM slice of Fig. 10 is barely visible."""
    assert model.pim_alu_energy() < model.internal_access_energy() / 10


def test_background_scales_linearly(model):
    assert model.background_energy(2000) == pytest.approx(
        2 * model.background_energy(1000)
    )


def test_from_counts_composition(model):
    e = model.from_counts(
        n_act=10, n_rd=100, n_wr=50, n_internal=200, n_alu=300,
        n_quant_ops=40, background_cycles=1e4,
    )
    assert e.act == pytest.approx(10 * model.act_pre_energy())
    assert e.rd == pytest.approx(100 * model.external_read_energy())
    assert e.wr == pytest.approx(50 * model.external_write_energy())
    assert e.total == e.act + e.rd + e.wr + e.pim + e.background


def test_breakdown_addition():
    a = EnergyBreakdown(act=1, rd=2, wr=3, pim=4, background=5)
    b = EnergyBreakdown(act=10, rd=20, wr=30, pim=40, background=50)
    c = a + b
    assert c.act == 11 and c.rd == 22 and c.wr == 33
    assert c.total == pytest.approx(165)


def test_breakdown_scaling():
    a = EnergyBreakdown(act=1, rd=2, wr=3, pim=4, background=5)
    s = a.scaled(2.0)
    assert s.total == pytest.approx(2 * a.total)


def test_currents_reject_iddpre_above_idd4r():
    with pytest.raises(ConfigError):
        DDR4_2133_CURRENTS.__class__(
            name="bad", vdd=1.2, idd0=75, idd2p=25, idd2n=33, idd3p=39,
            idd3n=44, idd4r=100, idd4w=225, idd5b=250, iddpre=150,
        )


def test_currents_reject_nonpositive():
    with pytest.raises(ConfigError):
        DDR4_2133_CURRENTS.__class__(
            name="bad", vdd=1.2, idd0=0, idd2p=25, idd2n=33, idd3p=39,
            idd3n=44, idd4r=225, idd4w=225, idd5b=250, iddpre=98,
        )


def test_act_energy_magnitude_reasonable(model):
    """ACT/PRE of a whole rank should land in the nanojoule range
    (10-40 nJ for DDR4 x8 chips) — a guard against unit slips."""
    assert 1e-9 < model.act_pre_energy() < 100e-9
