"""Scheduler tests: legality, issue models, dependency handling."""

import copy

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.geometry import DeviceGeometry
from repro.dram.scheduler import CommandScheduler, IssueModel
from repro.dram.timing import DDR4_2133
from repro.dram.validator import validate_trace
from repro.errors import ConfigError, SimulationError

T = DDR4_2133
GEOM = DeviceGeometry()


def _basic_kernel(rank=0, bg=0, bank=0, row=3):
    return [
        Command(CommandType.ACT, rank=rank, bankgroup=bg, bank=bank,
                row=row),
        Command(CommandType.SCALED_READ, rank=rank, bankgroup=bg,
                bank=bank, row=row, col=0, deps=(0,)),
        Command(CommandType.PIM_ADD, rank=rank, bankgroup=bg,
                deps=(1,)),
        Command(CommandType.WRITEBACK, rank=rank, bankgroup=bg,
                bank=bank, row=row, col=0, deps=(2,)),
        Command(CommandType.PRE, rank=rank, bankgroup=bg, bank=bank,
                row=row, deps=(3,)),
    ]


def _run(commands, **kwargs):
    sched = CommandScheduler(T, GEOM, **kwargs)
    return sched.run(copy.deepcopy(commands))


class TestIssueModel:
    def test_direct_single_port(self):
        im = IssueModel.direct(4)
        assert im.n_ports == 1
        assert im.port_of_rank == (0, 0, 0, 0)

    def test_buffered_port_per_rank(self):
        im = IssueModel.buffered(4)
        assert im.n_ports == 4

    def test_rejects_sparse_ports(self):
        with pytest.raises(ConfigError):
            IssueModel(name="bad", port_of_rank=(0, 2))

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            IssueModel(name="bad", port_of_rank=())


class TestScheduling:
    def test_basic_kernel_cycles(self):
        res = _run(_basic_kernel())
        issues = res.issue_cycles()
        assert issues[0] == 0
        assert issues[1] == T.tRCD  # ACT -> column
        assert issues[2] == issues[1] + T.tCCD_L  # read completes
        assert issues[3] == issues[2] + T.tPIM  # ALU completes
        assert issues[4] == issues[3] + T.tBURST + T.tWR  # tWR before PRE

    def test_trace_is_valid(self):
        res = _run(_basic_kernel())
        validate_trace(res.commands, T, GEOM, (0, 0, 0, 0))

    def test_independent_groups_overlap_under_buffered(self):
        cmds = _basic_kernel(rank=0) + [
            Command(
                c.kind, rank=1, bankgroup=c.bankgroup, bank=c.bank,
                row=c.row, col=c.col,
                deps=tuple(d + 5 for d in c.deps),
            )
            for c in _basic_kernel(rank=1)
        ]
        direct = _run(cmds, issue_model=IssueModel.direct(GEOM.ranks))
        buffered = _run(cmds, issue_model=IssueModel.buffered(GEOM.ranks))
        assert buffered.total_cycles <= direct.total_cycles

    def test_port_serializes_one_command_per_cycle(self):
        # 8 ACTs to different banks, no deps: a single port needs >= 8
        # distinct cycles.
        cmds = [
            Command(CommandType.ACT, rank=0, bankgroup=bg, bank=b, row=0)
            for bg in range(4)
            for b in range(2)
        ]
        res = _run(cmds)
        issues = res.issue_cycles()
        assert len(set(issues)) == len(issues)

    def test_rejects_forward_dependency(self):
        cmds = [
            Command(CommandType.ACT, row=0, deps=(1,)),
            Command(CommandType.PRE, row=0),
        ]
        with pytest.raises(SimulationError):
            _run(cmds)

    def test_rejects_self_dependency(self):
        cmds = [Command(CommandType.ACT, row=0, deps=(0,))]
        with pytest.raises(SimulationError):
            _run(cmds)

    def test_rejects_rank_out_of_range(self):
        cmds = [Command(CommandType.ACT, rank=99, row=0)]
        with pytest.raises(SimulationError):
            _run(cmds)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            CommandScheduler(T, GEOM, window=0)

    def test_rejects_bad_bus_scope(self):
        with pytest.raises(ConfigError):
            CommandScheduler(T, GEOM, data_bus_scope="weird")

    def test_rejects_mismatched_issue_model(self):
        with pytest.raises(ConfigError):
            CommandScheduler(T, GEOM, issue_model=IssueModel.direct(2))

    def test_stats_count_commands(self):
        res = _run(_basic_kernel())
        assert res.stats.issued_commands == 5
        assert res.stats.count(CommandType.SCALED_READ) == 1
        assert res.stats.internal_accesses() == 2

    def test_deps_enforced_across_ports(self):
        # Rank 1's command depends on rank 0's ALU op: even with
        # separate ports it must wait for completion.
        cmds = [
            Command(CommandType.ACT, rank=0, row=0),
            Command(CommandType.SCALED_READ, rank=0, row=0, deps=(0,)),
            Command(CommandType.ACT, rank=1, row=0, deps=(1,)),
        ]
        res = _run(cmds, issue_model=IssueModel.buffered(GEOM.ranks))
        issues = res.issue_cycles()
        assert issues[2] >= issues[1] + T.tCCD_L


class TestDataBusScopes:
    def _rw_stream(self):
        cmds = []
        for rank in range(2):
            base = len(cmds)
            cmds.append(
                Command(CommandType.ACT, rank=rank, row=0)
            )
            for col in range(8):
                cmds.append(
                    Command(
                        CommandType.RD, rank=rank, row=0, col=col,
                        deps=(base,),
                    )
                )
        return cmds

    def test_dimm_scope_beats_channel_scope(self):
        cmds = self._rw_stream()
        shared = _run(
            cmds, issue_model=IssueModel.buffered(GEOM.ranks),
            data_bus_scope="channel",
        )
        # Ranks 0 and 1 share a DIMM: use rank scope for full privacy.
        private = _run(
            cmds, issue_model=IssueModel.buffered(GEOM.ranks),
            data_bus_scope="rank",
        )
        assert private.total_cycles < shared.total_cycles

    def test_scoped_traces_validate(self):
        cmds = self._rw_stream()
        for scope in ("channel", "dimm", "rank"):
            res = _run(
                cmds, issue_model=IssueModel.buffered(GEOM.ranks),
                data_bus_scope=scope,
            )
            validate_trace(
                res.commands, T, GEOM, tuple(range(GEOM.ranks)),
                data_bus_scope=scope,
            )
