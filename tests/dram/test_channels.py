"""Multi-channel scheduling: partitioning, aggregation, identity.

The contract under test: a multi-channel geometry gives every channel a
full private replica of the DRAM state machines, so

* partitions schedule exactly as the same stream would on a
  single-channel device (per-channel issue cycles are unchanged);
* statistics aggregate across channels with elapsed time set by the
  slowest channel;
* ``channels=1`` bypasses the partitioning entirely and stays
  bit-identical to the historical scheduler;
* dependencies may not cross channels.

Plus the regression for ``DataBusState.earliest`` returning negative
issue cycles (clamped to 0 so no earliest-cycle cache ever stores a
negative value).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.channel import DataBusState
from repro.dram.commands import Command, CommandType
from repro.dram.geometry import DeviceGeometry
from repro.dram.scheduler import (
    CommandScheduler,
    IssueModel,
    replicate_across_channels,
    split_channels,
)
from repro.dram.timing import DDR4_2133, HBM_LIKE
from repro.dram.validator import validate_trace
from repro.errors import SimulationError, TimingViolation
from repro.optim.precision import PRECISIONS
from repro.optim.registry import build_optimizer
from repro.system.design import DESIGNS, DesignPoint
from repro.system.update_model import UpdatePhaseModel

T = DDR4_2133
GEOM1 = DeviceGeometry()


def _stream(design=DesignPoint.GRADPIM_BUFFERED, columns=4):
    model = UpdatePhaseModel(columns_per_stripe=columns)
    optimizer = build_optimizer(
        "momentum_sgd", {"eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4}
    )
    config = DESIGNS[design]
    commands, _, _, dependents, _period, _art = model._build_stream(
        config, optimizer, PRECISIONS["8/32"]
    )
    return config, commands, dependents


# ----------------------------------------------------------------------
# DataBusState.earliest regression
# ----------------------------------------------------------------------
class TestDataBusEarliestClamp:
    def test_fresh_bus_never_reports_negative_issue_cycle(self):
        """Seed bug: ``busy_until + gap - data_offset`` went below zero
        on a fresh bus (busy_until=0, tCL=16), leaking negative
        earliest cycles into whatever cached them."""
        bus = DataBusState(T)
        rd = Command(CommandType.RD, rank=0, bankgroup=0, bank=0)
        assert bus.earliest(rd) == 0

    def test_partially_busy_bus_clamps_to_zero(self):
        bus = DataBusState(T)
        wr = Command(CommandType.WR, rank=1)
        bus.apply(wr, 0)  # busy until tCWL + tBURST = 18
        rd = Command(CommandType.RD, rank=0)
        # 18 + gap(2, turnaround; 2, rank switch) - tCL(16) = 4 >= 0,
        # but shrink tCL headroom via a later reader to hit the clamp.
        probe = DataBusState(T)
        assert probe.earliest(rd) == 0  # fresh: 0 + 0 - 16 clamps to 0

    @given(
        busy=st.integers(min_value=0, max_value=40),
        kind=st.sampled_from([CommandType.RD, CommandType.WR]),
        last=st.sampled_from(
            [None, CommandType.RD, CommandType.WR]
        ),
        last_rank=st.integers(min_value=-1, max_value=3),
        rank=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=200)
    def test_earliest_is_never_negative(
        self, busy, kind, last, last_rank, rank
    ):
        bus = DataBusState(T)
        bus.busy_until = busy
        bus.last_kind = last
        bus.last_rank = last_rank
        cmd = Command(kind, rank=rank)
        assert bus.earliest(cmd) >= 0


# ----------------------------------------------------------------------
# Stream partitioning
# ----------------------------------------------------------------------
class TestSplitChannels:
    def test_partitions_preserve_stream_order_and_deps(self):
        _, commands, dependents = _stream(columns=2)
        replicated, rep_deps = replicate_across_channels(
            commands, 2, dependents
        )
        parts = split_channels(replicated, 2, rep_deps)
        assert [p.channel for p in parts] == [0, 1]
        for part in parts:
            assert len(part.commands) == len(commands)
            # Local deps match the original single-channel stream.
            assert [c.deps for c in part.commands] == [
                c.deps for c in commands
            ]
            assert part.dependents == dependents

    def test_empty_channels_get_empty_partitions(self):
        cmds = [Command(CommandType.ACT, channel=2, row=1)]
        parts = split_channels(cmds, 4)
        assert [len(p.commands) for p in parts] == [0, 0, 1, 0]

    def test_cross_channel_dependency_rejected(self):
        cmds = [
            Command(CommandType.ACT, channel=0, row=1),
            Command(CommandType.ACT, channel=1, row=1, deps=(0,)),
        ]
        with pytest.raises(SimulationError, match="cross"):
            split_channels(cmds, 2)

    def test_out_of_range_channel_rejected(self):
        cmds = [Command(CommandType.ACT, channel=5, row=1)]
        with pytest.raises(SimulationError, match="channel"):
            split_channels(cmds, 2)


# ----------------------------------------------------------------------
# Scheduling semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["reference", "incremental"])
class TestMultiChannelScheduling:
    def test_per_channel_schedule_matches_single_channel(self, engine):
        config, commands, dependents = _stream()
        channels = 4
        geom = DeviceGeometry(channels=channels)
        im = config.issue_model(GEOM1)
        single = CommandScheduler(
            T, GEOM1, im, engine=engine,
            data_bus_scope=config.data_bus_scope,
        ).run(commands, dependents=dependents)
        replicated, rep_deps = replicate_across_channels(
            commands, channels, dependents
        )
        multi = CommandScheduler(
            T, geom, im, engine=engine,
            data_bus_scope=config.data_bus_scope,
        ).run(replicated, dependents=rep_deps)
        n = len(commands)
        for c in range(channels):
            assert [
                x.issue_cycle for x in multi.commands[c * n:(c + 1) * n]
            ] == single.issue_cycles()

    def test_stats_aggregate_across_channels(self, engine):
        config, commands, dependents = _stream()
        channels = 4
        geom = DeviceGeometry(channels=channels)
        im = config.issue_model(GEOM1)
        single = CommandScheduler(
            T, GEOM1, im, engine=engine,
            data_bus_scope=config.data_bus_scope,
        ).run(commands, dependents=dependents)
        replicated, rep_deps = replicate_across_channels(
            commands, channels, dependents
        )
        multi = CommandScheduler(
            T, geom, im, engine=engine,
            data_bus_scope=config.data_bus_scope,
        ).run(replicated, dependents=rep_deps)
        s1, sm = single.stats, multi.stats
        assert sm.issued_commands == channels * s1.issued_commands
        assert sm.counts == {
            k: channels * v for k, v in s1.counts.items()
        }
        assert sm.total_cycles == s1.total_cycles  # slowest channel
        assert sm.channel_cycles == [s1.total_cycles] * channels
        assert sm.port_issued == [
            channels * n for n in s1.port_issued
        ]

    def test_multi_channel_trace_validates(self, engine):
        config, commands, dependents = _stream(columns=2)
        geom = DeviceGeometry(channels=2)
        im = config.issue_model(GEOM1)
        replicated, rep_deps = replicate_across_channels(
            commands, 2, dependents
        )
        result = CommandScheduler(
            T, geom, im, engine=engine,
            data_bus_scope=config.data_bus_scope,
        ).run(replicated, dependents=rep_deps)
        for thorough in (False, True):
            validate_trace(
                result.commands, T, geom, im.port_of_rank,
                data_bus_scope=config.data_bus_scope,
                thorough=thorough,
            )

    def test_channel_out_of_range_rejected_by_run(self, engine):
        geom = DeviceGeometry(channels=2)
        sched = CommandScheduler(T, geom, engine=engine)
        with pytest.raises(SimulationError, match="channel"):
            sched.run([Command(CommandType.ACT, channel=2, row=1)])

    def test_heterogeneous_channels_time_by_slowest(self, engine):
        """Channels with different amounts of work finish at different
        cycles; the device-level elapsed time is the slowest one."""
        def acts(channel, rows):
            out = []
            for r in range(rows):
                out.append(
                    Command(
                        CommandType.ACT, channel=channel, bank=0,
                        row=r, deps=(),
                    )
                )
                out.append(
                    Command(
                        CommandType.PRE, channel=channel, bank=0,
                        row=r, deps=(len(out) - 1,),
                    )
                )
            return out

        light = acts(0, 1)
        heavy = acts(1, 6)
        # Interleave, fixing deps to global indices per channel.
        cmds = []
        for c, block in ((0, light), (1, heavy)):
            offset = len(cmds)
            for cmd in block:
                cmds.append(
                    Command(
                        cmd.kind, channel=c, bank=0, row=cmd.row,
                        deps=tuple(d + offset for d in cmd.deps),
                    )
                )
        geom = DeviceGeometry(channels=2)
        result = CommandScheduler(T, geom, engine=engine).run(cmds)
        stats = result.stats
        assert len(stats.channel_cycles) == 2
        assert stats.channel_cycles[1] > stats.channel_cycles[0]
        assert stats.total_cycles == stats.channel_cycles[1]


class TestChannelsOneIdentity:
    """``channels=1`` must stay byte-identical to the seed scheduler."""

    @pytest.mark.parametrize("design", list(DesignPoint))
    def test_explicit_channels_one_schedule_identical(self, design):
        config, commands, dependents = _stream(design)
        im = config.issue_model(GEOM1)
        kwargs = dict(
            per_bank_pim=config.per_bank_pim,
            data_bus_scope=config.data_bus_scope,
        )
        default = CommandScheduler(T, GEOM1, im, **kwargs).run(
            commands, dependents=dependents
        )
        explicit = CommandScheduler(
            T, DeviceGeometry(channels=1), im, **kwargs
        ).run(commands, dependents=dependents)
        assert default.issue_cycles() == explicit.issue_cycles()
        assert default.stats == explicit.stats
        assert explicit.stats.channel_cycles == []

    def test_profile_identical_across_channel_spellings(self):
        optimizer = build_optimizer(
            "momentum_sgd",
            {"eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4},
        )
        a = UpdatePhaseModel(columns_per_stripe=8)
        b = UpdatePhaseModel(
            columns_per_stripe=8,
            geometry=DeviceGeometry(channels=1),
        )
        for design in DesignPoint:
            assert a.profile(design, optimizer) == b.profile(
                design, optimizer
            )


class TestHBMSubstrate:
    def test_hbm2_profile_uses_real_per_channel_buses(self):
        """The 8-channel HBM2 substrate beats its own single-channel
        ablation by the channel count — impossible under the old
        aggregated tBURST=1 fake, which had no channel dimension at
        all."""
        optimizer = build_optimizer("sgd", {"eta": 0.01})
        one = UpdatePhaseModel(
            timing=HBM_LIKE,
            geometry=DeviceGeometry(channels=1),
            columns_per_stripe=4,
        ).profile(DesignPoint.GRADPIM_BUFFERED, optimizer)
        eight = UpdatePhaseModel(
            timing=HBM_LIKE,
            geometry=DeviceGeometry(channels=8),
            columns_per_stripe=4,
        ).profile(DesignPoint.GRADPIM_BUFFERED, optimizer)
        assert eight.seconds_per_param == pytest.approx(
            one.seconds_per_param / 8
        )
        assert eight.internal_bandwidth == pytest.approx(
            8 * one.internal_bandwidth
        )

    def test_design_pinned_channels_override_geometry(self):
        """A DesignConfig channel pin beats the geometry: the
        single-channel ablation of a multi-channel device."""
        import dataclasses

        optimizer = build_optimizer("sgd", {"eta": 0.01})
        geom8 = DeviceGeometry(channels=8)
        model = UpdatePhaseModel(
            timing=HBM_LIKE, geometry=geom8, columns_per_stripe=4
        )
        pinned = dataclasses.replace(
            DESIGNS[DesignPoint.GRADPIM_BUFFERED], channels=1
        )
        assert pinned.effective_channels(geom8) == 1
        assert (
            DESIGNS[DesignPoint.GRADPIM_BUFFERED].effective_channels(
                geom8
            )
            == 8
        )


class TestValidatorChannels:
    def test_rejects_out_of_range_channel(self):
        geom = DeviceGeometry(channels=2)
        cmd = Command(CommandType.ACT, channel=3, row=1)
        cmd.issue_cycle = 0
        with pytest.raises(TimingViolation, match="channel"):
            validate_trace([cmd], T, geom, (0,) * geom.ranks)

    def test_same_cycle_same_port_ok_across_channels(self):
        """Two channels issuing on 'port 0' in the same cycle is legal:
        every channel owns its own command bus."""
        geom = DeviceGeometry(channels=2)
        a = Command(CommandType.ACT, channel=0, row=1)
        b = Command(CommandType.ACT, channel=1, row=1)
        a.issue_cycle = 0
        b.issue_cycle = 0
        for thorough in (False, True):
            validate_trace(
                [a, b], T, geom, (0,) * geom.ranks, thorough=thorough
            )

    def test_same_cycle_same_port_within_channel_rejected(self):
        geom = DeviceGeometry(channels=2)
        a = Command(CommandType.ACT, channel=1, bank=0, row=1)
        b = Command(CommandType.ACT, channel=1, bank=1, row=1)
        a.issue_cycle = 0
        b.issue_cycle = 0
        with pytest.raises(TimingViolation, match="command-bus"):
            validate_trace([a, b], T, geom, (0,) * geom.ranks)
