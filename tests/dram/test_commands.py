"""Command-vocabulary tests: classification and latencies."""

import pytest

from repro.dram.commands import (
    Command,
    CommandType,
    EXTERNAL_COLUMN_COMMANDS,
    INTERNAL_COLUMN_COMMANDS,
    PIM_ALU_COMMANDS,
    EXTENDED_ALU_COMMANDS,
    command_latency,
)
from repro.dram.timing import DDR4_2133


def test_internal_and_external_disjoint():
    assert not INTERNAL_COLUMN_COMMANDS & EXTERNAL_COLUMN_COMMANDS


def test_extended_subset_of_alu():
    assert EXTENDED_ALU_COMMANDS < PIM_ALU_COMMANDS


@pytest.mark.parametrize(
    "kind", [CommandType.SCALED_READ, CommandType.QREG_LOAD]
)
def test_internal_reads_classified(kind):
    cmd = Command(kind)
    assert cmd.is_column()
    assert cmd.is_internal_column()
    assert cmd.is_read()
    assert not cmd.is_write()
    assert not cmd.is_external_column()


@pytest.mark.parametrize(
    "kind", [CommandType.WRITEBACK, CommandType.QREG_STORE]
)
def test_internal_writes_classified(kind):
    cmd = Command(kind)
    assert cmd.is_internal_column()
    assert cmd.is_write()
    assert not cmd.is_read()


def test_rd_is_external_read():
    cmd = Command(CommandType.RD)
    assert cmd.is_external_column()
    assert cmd.is_read()


def test_wr_is_external_write():
    cmd = Command(CommandType.WR)
    assert cmd.is_external_column()
    assert cmd.is_write()


@pytest.mark.parametrize(
    "kind",
    [
        CommandType.PIM_ADD,
        CommandType.PIM_SUB,
        CommandType.PIM_QUANT,
        CommandType.PIM_DEQUANT,
        CommandType.PIM_MUL,
        CommandType.PIM_RSQRT,
    ],
)
def test_alu_commands_are_not_column(kind):
    cmd = Command(kind)
    assert cmd.is_pim_alu()
    assert not cmd.is_column()


def test_act_pre_are_neither():
    for kind in (CommandType.ACT, CommandType.PRE):
        cmd = Command(kind)
        assert not cmd.is_column()
        assert not cmd.is_pim_alu()


def test_same_bank():
    a = Command(CommandType.RD, rank=1, bankgroup=2, bank=3)
    b = Command(CommandType.WR, rank=1, bankgroup=2, bank=3)
    c = Command(CommandType.WR, rank=1, bankgroup=2, bank=0)
    assert a.same_bank(b)
    assert not a.same_bank(c)


def test_scaled_read_latency_is_tccd_l():
    # §IV-C: "the memory controller regards the operation as complete
    # after tCCD_L".
    assert (
        command_latency(CommandType.SCALED_READ, DDR4_2133)
        == DDR4_2133.tCCD_L
    )


def test_alu_latency_is_tpim():
    assert command_latency(CommandType.PIM_ADD, DDR4_2133) == (
        DDR4_2133.tPIM
    )


def test_rd_latency_includes_burst():
    assert command_latency(CommandType.RD, DDR4_2133) == (
        DDR4_2133.tCL + DDR4_2133.tBURST
    )


def test_wr_latency_includes_cwl():
    assert command_latency(CommandType.WR, DDR4_2133) == (
        DDR4_2133.tCWL + DDR4_2133.tBURST
    )


def test_act_latency_is_trcd():
    assert command_latency(CommandType.ACT, DDR4_2133) == DDR4_2133.tRCD


def test_pre_latency_is_trp():
    assert command_latency(CommandType.PRE, DDR4_2133) == DDR4_2133.tRP


def test_every_kind_has_latency():
    for kind in CommandType:
        assert command_latency(kind, DDR4_2133) > 0
