"""Trace-statistics tests."""

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.geometry import DeviceGeometry
from repro.dram.stats import TraceStats
from repro.dram.timing import DDR4_2133

GEOM = DeviceGeometry()


def _stats_with(kinds, ports=None):
    stats = TraceStats()
    ports = ports or [0] * len(kinds)
    for kind, port in zip(kinds, ports):
        stats.record(Command(kind), port)
    return stats


def test_counts_by_type():
    stats = _stats_with(
        [CommandType.RD, CommandType.RD, CommandType.WR]
    )
    assert stats.count(CommandType.RD) == 2
    assert stats.count(CommandType.WR) == 1
    assert stats.count(CommandType.ACT) == 0


def test_internal_vs_external_accesses():
    stats = _stats_with(
        [
            CommandType.SCALED_READ,
            CommandType.WRITEBACK,
            CommandType.QREG_LOAD,
            CommandType.QREG_STORE,
            CommandType.RD,
        ]
    )
    assert stats.internal_accesses() == 4
    assert stats.external_accesses() == 1
    assert stats.internal_bytes(GEOM) == 4 * 64
    assert stats.external_bytes(GEOM) == 64


def test_alu_ops():
    stats = _stats_with(
        [CommandType.PIM_ADD, CommandType.PIM_QUANT, CommandType.RD]
    )
    assert stats.alu_ops() == 2


def test_port_accounting():
    stats = _stats_with(
        [CommandType.RD, CommandType.RD, CommandType.RD],
        ports=[0, 1, 1],
    )
    assert stats.port_issued == [1, 2]


def test_bandwidths():
    stats = _stats_with([CommandType.SCALED_READ] * 10)
    stats.total_cycles = 100
    seconds = DDR4_2133.cycles_to_s(100)
    assert stats.internal_bandwidth(DDR4_2133, GEOM) == pytest.approx(
        10 * 64 / seconds
    )
    assert stats.external_bandwidth(DDR4_2133, GEOM) == 0.0


def test_command_bus_utilization_can_exceed_one():
    """Buffered command generation can exceed one command per cycle in
    aggregate — the Fig. 11 (top) y-axis runs to 400 %."""
    stats = _stats_with([CommandType.PIM_ADD] * 8, ports=[0, 1, 2, 3] * 2)
    stats.total_cycles = 4
    assert stats.command_bus_utilization() == pytest.approx(2.0)


def test_zero_cycles_zero_bandwidth():
    stats = TraceStats()
    assert stats.command_bus_utilization() == 0.0
    assert stats.internal_bandwidth(DDR4_2133, GEOM) == 0.0
