"""Functional-DRAM and executor tests."""

import numpy as np
import pytest

from repro.dram.commands import Command, CommandType, QUANT_REG
from repro.dram.geometry import DeviceGeometry
from repro.errors import SimulationError
from repro.pim.functional import FunctionalDRAM, FunctionalExecutor
from repro.pim.quant import QuantSpec
from repro.pim.scaler import ScalerValue


@pytest.fixture()
def dram():
    return FunctionalDRAM(DeviceGeometry())


class TestFunctionalDRAM:
    def test_unwritten_columns_read_zero(self, dram):
        col = dram.read_column(0, 0, 0, 0, 0)
        assert col.shape == (64,)
        assert not col.any()

    def test_column_roundtrip(self, dram):
        payload = np.arange(64, dtype=np.uint8)
        dram.write_column(1, 2, 3, 4, 5, payload)
        np.testing.assert_array_equal(
            dram.read_column(1, 2, 3, 4, 5), payload
        )

    def test_read_returns_copy(self, dram):
        payload = np.arange(64, dtype=np.uint8)
        dram.write_column(0, 0, 0, 0, 0, payload)
        view = dram.read_column(0, 0, 0, 0, 0)
        view[:] = 0
        assert dram.read_column(0, 0, 0, 0, 0)[1] == 1

    def test_wrong_width_rejected(self, dram):
        with pytest.raises(SimulationError):
            dram.write_column(0, 0, 0, 0, 0, np.zeros(8, dtype=np.uint8))

    def test_array_roundtrip_through_bank_space(self, dram, rng):
        values = rng.normal(size=1000).astype(np.float32)
        dram.store_array(2, values)
        out = dram.load_array(2, np.float32, 1000)
        np.testing.assert_array_equal(out, values)

    def test_array_spans_stripes(self, dram, rng):
        # > 8 KiB spills into the next bank group (Fig. 7 interleave).
        values = rng.normal(size=5000).astype(np.float32)
        dram.store_array(0, values)
        np.testing.assert_array_equal(
            dram.load_array(0, np.float32, 5000), values
        )

    def test_unaligned_base_rejected(self, dram):
        with pytest.raises(SimulationError):
            dram.store_array(0, np.zeros(4, dtype=np.float32), base=7)


class TestExecutor:
    def test_scaled_read_writeback_moves_bytes(self, dram):
        values = np.arange(16, dtype=np.float32)
        dram.write_column(0, 0, 1, 0, 0, values.view(np.uint8))
        ex = FunctionalExecutor(dram)
        ex.execute(
            [
                Command(CommandType.SCALED_READ, bank=1, row=0, col=0,
                        dst_reg=0),
                Command(CommandType.WRITEBACK, bank=2, row=0, col=0,
                        src_reg=0),
            ]
        )
        out = dram.read_column(0, 0, 2, 0, 0).view(np.float32)
        np.testing.assert_array_equal(out, values)

    def test_scaler_programming_reaches_all_units(self, dram):
        ex = FunctionalExecutor(dram)
        ex.program_scaler(1, ScalerValue(sign=1, n=-1))
        for rank in range(dram.geometry.ranks):
            for bg in range(dram.geometry.bankgroups):
                unit = ex.unit_for(rank, bg, 0)
                assert unit.scalers[1].value == 0.5

    def test_add_pipeline(self, dram):
        a = np.full(16, 3.0, dtype=np.float32)
        b = np.full(16, 4.0, dtype=np.float32)
        dram.write_column(0, 0, 0, 0, 0, a.view(np.uint8))
        dram.write_column(0, 0, 1, 0, 0, b.view(np.uint8))
        ex = FunctionalExecutor(dram)
        ex.execute(
            [
                Command(CommandType.SCALED_READ, bank=0, dst_reg=0),
                Command(CommandType.SCALED_READ, bank=1, dst_reg=1),
                Command(CommandType.PIM_ADD, dst_reg=0),
                Command(CommandType.WRITEBACK, bank=2, src_reg=0),
            ]
        )
        out = dram.read_column(0, 0, 2, 0, 0).view(np.float32)
        assert np.all(out == 7.0)

    def test_qreg_quant_dequant_path(self, dram):
        spec = QuantSpec(exponent=-6)
        values = np.linspace(-1, 1, 16).astype(np.float32)
        dram.write_column(0, 0, 0, 0, 0, values.view(np.uint8))
        ex = FunctionalExecutor(dram, spec)
        cmds = [
            Command(CommandType.SCALED_READ, bank=0, dst_reg=0),
        ]
        for pos in range(4):
            cmds.append(
                Command(CommandType.PIM_QUANT, src_reg=0, position=pos)
            )
        cmds.append(Command(CommandType.QREG_STORE, bank=1))
        ex.execute(cmds)
        codes = dram.read_column(0, 0, 1, 0, 0).view(np.int8)
        np.testing.assert_array_equal(
            codes[:16], spec.quantize(values)
        )

    def test_rd_wr_are_noops(self, dram):
        ex = FunctionalExecutor(dram)
        ex.execute([Command(CommandType.RD), Command(CommandType.WR)])

    def test_act_pre_are_noops(self, dram):
        ex = FunctionalExecutor(dram)
        ex.execute([Command(CommandType.ACT), Command(CommandType.PRE)])

    def test_per_bank_units_are_distinct(self, dram):
        ex = FunctionalExecutor(dram, per_bank_pim=True)
        a = ex.unit_for(0, 0, 0)
        b = ex.unit_for(0, 0, 1)
        assert a is not b

    def test_per_group_units_shared_across_banks(self, dram):
        ex = FunctionalExecutor(dram)
        assert ex.unit_for(0, 0, 0) is ex.unit_for(0, 0, 3)

    def test_mul_rsqrt_extension(self, dram):
        a = np.full(16, 9.0, dtype=np.float32)
        dram.write_column(0, 0, 0, 0, 0, a.view(np.uint8))
        ex = FunctionalExecutor(dram, rsqrt_epsilon=0.0)
        ex.execute(
            [
                Command(CommandType.SCALED_READ, bank=0, dst_reg=0),
                Command(CommandType.PIM_RSQRT, dst_reg=0),
                Command(CommandType.WRITEBACK, bank=1, src_reg=0),
            ]
        )
        out = dram.read_column(0, 0, 1, 0, 0).view(np.float32)
        assert out[0] == pytest.approx(1.0 / 3.0)
