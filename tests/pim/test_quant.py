"""Quantization-spec tests: round trips, saturation, geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.pim.quant import QuantSpec


class TestGeometry:
    def test_default_is_8_32(self):
        q = QuantSpec()
        assert q.hp_dtype == np.float32
        assert q.lp_dtype == np.int8
        assert q.ratio == 4

    def test_16_32_ratio(self):
        assert QuantSpec(32, 16).ratio == 2

    def test_8_16_ratio(self):
        q = QuantSpec(16, 8)
        assert q.ratio == 2
        assert q.hp_dtype == np.float16

    def test_code_range(self):
        q = QuantSpec(32, 8)
        assert q.qmin == -128
        assert q.qmax == 127

    def test_16bit_code_range(self):
        q = QuantSpec(32, 16)
        assert q.qmin == -32768
        assert q.qmax == 32767

    def test_step(self):
        assert QuantSpec(exponent=-6).step == pytest.approx(2**-6)

    def test_rejects_lp_not_below_hp(self):
        with pytest.raises(ConfigError):
            QuantSpec(hp_bits=16, lp_bits=16)

    def test_rejects_unknown_widths(self):
        with pytest.raises(ConfigError):
            QuantSpec(hp_bits=64, lp_bits=8)
        with pytest.raises(ConfigError):
            QuantSpec(hp_bits=32, lp_bits=4)


class TestRoundTrip:
    def test_grid_values_exact(self):
        q = QuantSpec(exponent=-6)
        x = np.array([0.0, 0.5, -0.25, 1.984375], dtype=np.float32)
        np.testing.assert_array_equal(q.dequantize(q.quantize(x)), x)

    def test_saturation(self):
        q = QuantSpec(exponent=-6)
        x = np.array([100.0, -100.0], dtype=np.float32)
        codes = q.quantize(x)
        np.testing.assert_array_equal(codes, [127, -128])

    def test_representable_range(self):
        q = QuantSpec(exponent=-6)
        lo, hi = q.representable_range()
        assert lo == pytest.approx(-2.0)
        assert hi == pytest.approx(127 / 64)

    def test_round_half_to_even(self):
        q = QuantSpec(exponent=0)  # step 1
        x = np.array([0.5, 1.5, 2.5, -0.5], dtype=np.float32)
        np.testing.assert_array_equal(q.quantize(x), [0, 2, 2, 0])

    @given(
        st.lists(
            st.floats(min_value=-1.875, max_value=1.875, width=32),
            min_size=1, max_size=64,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_error_bounded(self, values):
        q = QuantSpec(exponent=-6)
        x = np.array(values, dtype=np.float32)
        back = q.dequantize(q.quantize(x))
        bound = q.roundtrip_error_bound() + 1e-7
        assert np.all(np.abs(back.astype(np.float64) - x) <= bound)

    @given(st.integers(min_value=-128, max_value=127))
    @settings(max_examples=50, deadline=None)
    def test_codes_are_fixed_points(self, code):
        """Quantize(dequantize(code)) == code for every code."""
        q = QuantSpec(exponent=-6)
        c = np.array([code], dtype=np.int8)
        assert q.quantize(q.dequantize(c))[0] == code

    def test_fp16_master_roundtrip(self):
        q = QuantSpec(hp_bits=16, lp_bits=8, exponent=-4)
        x = np.array([0.5, -0.75, 1.25], dtype=np.float16)
        back = q.dequantize(q.quantize(x))
        assert back.dtype == np.float16
        assert np.all(np.abs(back.astype(np.float64) - x.astype(np.float64))
                      <= q.roundtrip_error_bound() + 1e-6)
