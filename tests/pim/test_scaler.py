"""Scaler tests: the 2^n ± 2^m approximation and its datapath."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.pim.scaler import MAX_EXP, MIN_EXP, ScalerTable, ScalerValue


class TestScalerValue:
    def test_identity_is_exactly_one(self):
        assert ScalerValue.identity().value == 1.0

    def test_pure_power_of_two(self):
        assert ScalerValue(sign=1, n=-3).value == 0.125

    def test_two_term_sum(self):
        assert ScalerValue(sign=1, n=0, term=1, m=-1).value == 1.5

    def test_two_term_difference(self):
        assert ScalerValue(sign=1, n=0, term=-1, m=-2).value == 0.75

    def test_negative_sign(self):
        assert ScalerValue(sign=-1, n=-2).value == -0.25

    def test_rejects_bad_sign(self):
        with pytest.raises(ConfigError):
            ScalerValue(sign=0, n=0)

    def test_rejects_bad_term(self):
        with pytest.raises(ConfigError):
            ScalerValue(sign=1, n=0, term=2, m=-1)

    def test_rejects_m_not_below_n(self):
        with pytest.raises(ConfigError):
            ScalerValue(sign=1, n=0, term=1, m=0)

    def test_rejects_exponent_out_of_range(self):
        with pytest.raises(ConfigError):
            ScalerValue(sign=1, n=MAX_EXP + 1)
        with pytest.raises(ConfigError):
            ScalerValue(sign=1, n=0, term=1, m=MIN_EXP - 1)


class TestApproximate:
    @pytest.mark.parametrize(
        "target", [1.0, 0.5, -0.25, 1.5, 0.75, 3.0, -6.0]
    )
    def test_exactly_representable(self, target):
        approx = ScalerValue.approximate(target)
        assert approx.value == target

    def test_paper_learning_rate(self):
        # eta = 0.01 ~ 2^-7 + 2^-9 = 0.009765625 (2.3% error).
        approx = ScalerValue.approximate(0.01)
        assert approx.relative_error(0.01) < 0.05

    def test_momentum_constant(self):
        approx = ScalerValue.approximate(0.9)
        assert approx.relative_error(0.9) < 0.05

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            ScalerValue.approximate(0.0)

    @given(
        st.floats(
            min_value=1e-6, max_value=1e4,
            allow_nan=False, allow_infinity=False,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_relative_error_bounded(self, target):
        """Two powers of two always land within ~1/6 of any magnitude
        in range (worst case is the midpoint between neighbours)."""
        approx = ScalerValue.approximate(target)
        assert approx.relative_error(target) <= 1.0 / 6.0 + 1e-9

    @given(st.floats(min_value=1e-6, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_sign_follows_target(self, magnitude):
        assert ScalerValue.approximate(magnitude).value > 0
        assert ScalerValue.approximate(-magnitude).value < 0

    @given(
        st.floats(
            min_value=1e-6, max_value=1e4,
            allow_nan=False, allow_infinity=False,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_best_pure_power(self, target):
        """The narrowed two-term search must dominate the best single
        power of two (a cheap independent optimality floor)."""
        approx = ScalerValue.approximate(target)
        best_pure = min(
            (
                abs(math.ldexp(1.0, n) - target) / target
                for n in range(MIN_EXP, MAX_EXP + 1)
            ),
        )
        assert approx.relative_error(target) <= best_pure + 1e-12

    def test_approximate_is_cached(self):
        assert ScalerValue.approximate(0.01) is (
            ScalerValue.approximate(0.01)
        )


class TestApply:
    def test_float32_lane_scaling(self):
        s = ScalerValue(sign=1, n=-1)
        x = np.array([2.0, -4.0, 0.5], dtype=np.float32)
        out = s.apply(x)
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, [1.0, -2.0, 0.25])

    def test_float32_stays_float32(self):
        s = ScalerValue.approximate(0.9)
        x = np.ones(16, dtype=np.float32)
        assert s.apply(x).dtype == np.float32

    def test_fixed_point_shift(self):
        s = ScalerValue(sign=1, n=-2)
        x = np.array([64, -64, 7], dtype=np.int32)
        np.testing.assert_array_equal(s.apply(x), [16, -16, 1])

    def test_fixed_point_two_term(self):
        s = ScalerValue(sign=1, n=0, term=1, m=-1)  # 1.5
        x = np.array([8], dtype=np.int32)
        np.testing.assert_array_equal(s.apply(x), [12])

    def test_fixed_point_saturates(self):
        s = ScalerValue(sign=1, n=4)
        x = np.array([2**30], dtype=np.int32)
        assert s.apply(x)[0] == np.iinfo(np.int32).max


class TestScalerTable:
    def test_slot_zero_is_identity(self):
        table = ScalerTable()
        assert table[0].value == 1.0

    def test_program_and_read(self):
        table = ScalerTable()
        value = ScalerValue.approximate(0.01)
        table.program(2, value)
        assert table[2] == value

    def test_slot_zero_locked(self):
        table = ScalerTable()
        with pytest.raises(ConfigError):
            table.program(0, ScalerValue.approximate(0.5))

    def test_rejects_out_of_range_slot(self):
        table = ScalerTable()
        with pytest.raises(ConfigError):
            table.program(4, ScalerValue.identity())
        with pytest.raises(ConfigError):
            table[-1]

    def test_values_snapshot(self):
        table = ScalerTable()
        assert len(table.values()) == 4
