"""Register-file tests: widths, validity tracking, the quant register."""

import numpy as np
import pytest

from repro.dram.commands import QUANT_REG
from repro.errors import ConfigError, SimulationError
from repro.pim.registers import NUM_TEMP_REGS, REGISTER_BYTES, RegisterFile


def _payload(fill=7):
    return np.full(REGISTER_BYTES, fill, dtype=np.uint8)


def test_width_matches_paper():
    # "the same width of the global sense amplifiers (64 Bytes)".
    assert REGISTER_BYTES == 64
    assert NUM_TEMP_REGS == 2


def test_temp_roundtrip():
    rf = RegisterFile()
    rf.write_temp(0, _payload(3))
    np.testing.assert_array_equal(rf.read_temp(0), _payload(3))


def test_temps_independent():
    rf = RegisterFile()
    rf.write_temp(0, _payload(1))
    rf.write_temp(1, _payload(2))
    assert rf.read_temp(0)[0] == 1
    assert rf.read_temp(1)[0] == 2


def test_read_before_write_rejected():
    rf = RegisterFile()
    with pytest.raises(SimulationError):
        rf.read_temp(0)


def test_temp_written_flag():
    rf = RegisterFile()
    assert not rf.temp_written(1)
    rf.write_temp(1, _payload())
    assert rf.temp_written(1)


def test_wrong_width_rejected():
    rf = RegisterFile()
    with pytest.raises(SimulationError):
        rf.write_temp(0, np.zeros(32, dtype=np.uint8))


def test_quant_reg_not_a_temp():
    rf = RegisterFile()
    with pytest.raises(SimulationError):
        rf.write_temp(QUANT_REG, _payload())


def test_out_of_range_temp():
    rf = RegisterFile()
    with pytest.raises(SimulationError):
        rf.read_temp(5)


def test_quant_full_roundtrip():
    rf = RegisterFile()
    rf.write_quant(_payload(9))
    np.testing.assert_array_equal(rf.read_quant(), _payload(9))


def test_quant_slices_fill_then_drain():
    rf = RegisterFile()
    for pos in range(4):
        rf.write_quant_slice(pos, 4, np.full(16, pos, dtype=np.uint8))
    out = rf.read_quant()
    for pos in range(4):
        assert np.all(out[pos * 16:(pos + 1) * 16] == pos)


def test_quant_store_before_full_rejected():
    """Draining a partially-filled quantization register is a kernel
    bug: Fig. 5 fills all positions before the writeback."""
    rf = RegisterFile()
    rf.write_quant_slice(0, 4, np.zeros(16, dtype=np.uint8))
    with pytest.raises(SimulationError):
        rf.read_quant()


def test_quant_slice_read_unwritten_rejected():
    rf = RegisterFile()
    with pytest.raises(SimulationError):
        rf.read_quant_slice(2, 4)


def test_quant_slice_halves():
    rf = RegisterFile()
    rf.write_quant_slice(0, 2, np.full(32, 1, dtype=np.uint8))
    rf.write_quant_slice(1, 2, np.full(32, 2, dtype=np.uint8))
    out = rf.read_quant()
    assert np.all(out[:32] == 1) and np.all(out[32:] == 2)


def test_bad_positions_rejected():
    rf = RegisterFile()
    with pytest.raises(ConfigError):
        rf.write_quant_slice(0, 3, np.zeros(21, dtype=np.uint8))
    with pytest.raises(SimulationError):
        rf.write_quant_slice(4, 4, np.zeros(16, dtype=np.uint8))


def test_bad_slice_width_rejected():
    rf = RegisterFile()
    with pytest.raises(SimulationError):
        rf.write_quant_slice(0, 4, np.zeros(8, dtype=np.uint8))
