"""ISA tests: the Table I truth table round-trips through 5 RFU bits."""

import pytest

from repro.dram.commands import Command, CommandType, QUANT_REG
from repro.errors import IsaError
from repro.pim.isa import (
    ENCODABLE,
    EXTENDED,
    decode_command,
    decode_extended,
    encode_command,
    encode_extended,
)


def _roundtrip(cmd):
    return decode_command(encode_command(cmd))


class TestTableOne:
    @pytest.mark.parametrize("scale_id", range(4))
    @pytest.mark.parametrize("dst", (0, 1))
    def test_scaled_read(self, scale_id, dst):
        decoded = _roundtrip(
            Command(CommandType.SCALED_READ, scale_id=scale_id,
                    dst_reg=dst)
        )
        assert decoded.kind is CommandType.SCALED_READ
        assert decoded.scale_id == scale_id
        assert decoded.reg == dst

    @pytest.mark.parametrize("position", range(4))
    @pytest.mark.parametrize("dst", (0, 1))
    def test_dequant(self, position, dst):
        decoded = _roundtrip(
            Command(CommandType.PIM_DEQUANT, position=position,
                    dst_reg=dst)
        )
        assert decoded.kind is CommandType.PIM_DEQUANT
        assert decoded.position == position
        assert decoded.reg == dst

    @pytest.mark.parametrize("position", range(4))
    def test_quant(self, position):
        decoded = _roundtrip(
            Command(CommandType.PIM_QUANT, position=position, src_reg=1)
        )
        assert decoded.kind is CommandType.PIM_QUANT
        assert decoded.position == position
        assert decoded.reg == 1

    @pytest.mark.parametrize("src", (0, 1))
    def test_writeback(self, src):
        decoded = _roundtrip(
            Command(CommandType.WRITEBACK, src_reg=src)
        )
        assert decoded.kind is CommandType.WRITEBACK
        assert decoded.reg == src

    def test_writeback_from_quant_reg_is_qreg_store(self):
        decoded = _roundtrip(
            Command(CommandType.WRITEBACK, src_reg=QUANT_REG)
        )
        assert decoded.kind is CommandType.QREG_STORE

    def test_qreg_directions(self):
        load = _roundtrip(Command(CommandType.QREG_LOAD))
        store = _roundtrip(Command(CommandType.QREG_STORE))
        assert load.kind is CommandType.QREG_LOAD
        assert store.kind is CommandType.QREG_STORE

    @pytest.mark.parametrize("dst", (0, 1))
    def test_add_sub(self, dst):
        add = _roundtrip(Command(CommandType.PIM_ADD, dst_reg=dst))
        sub = _roundtrip(Command(CommandType.PIM_SUB, dst_reg=dst))
        assert add.kind is CommandType.PIM_ADD and add.reg == dst
        assert sub.kind is CommandType.PIM_SUB and sub.reg == dst

    def test_encodings_fit_five_bits(self):
        for kind in ENCODABLE:
            bits = encode_command(Command(kind, src_reg=0, dst_reg=0))
            assert 0 <= bits < 32

    def test_no_encoding_collisions(self):
        """Distinct (kind, operands) must map to distinct bit patterns."""
        seen = {}
        for kind in ENCODABLE:
            for scale in range(4):
                for pos in range(4):
                    for reg in (0, 1):
                        cmd = Command(
                            kind, scale_id=scale, position=pos,
                            src_reg=reg, dst_reg=reg,
                        )
                        try:
                            bits = encode_command(cmd)
                        except IsaError:
                            continue
                        decoded = decode_command(bits)
                        prev = seen.get(bits)
                        if prev is not None:
                            assert prev == decoded
                        seen[bits] = decoded

    def test_every_5bit_pattern_decodes(self):
        for bits in range(32):
            decoded = decode_command(bits)
            assert decoded.kind in ENCODABLE or decoded.kind in (
                CommandType.QREG_LOAD, CommandType.QREG_STORE,
            )


class TestErrors:
    def test_act_has_no_encoding(self):
        with pytest.raises(IsaError):
            encode_command(Command(CommandType.ACT))

    def test_rd_has_no_encoding(self):
        with pytest.raises(IsaError):
            encode_command(Command(CommandType.RD))

    def test_bad_scale_id(self):
        with pytest.raises(IsaError):
            encode_command(
                Command(CommandType.SCALED_READ, scale_id=4)
            )

    def test_bad_position(self):
        with pytest.raises(IsaError):
            encode_command(
                Command(CommandType.PIM_QUANT, position=5)
            )

    def test_bad_register(self):
        with pytest.raises(IsaError):
            encode_command(
                Command(CommandType.PIM_ADD, dst_reg=3)
            )

    def test_decode_rejects_wide_field(self):
        with pytest.raises(IsaError):
            decode_command(32)


class TestExtended:
    def test_mul_roundtrip(self):
        bits = encode_extended(Command(CommandType.PIM_MUL, dst_reg=1))
        decoded = decode_extended(bits)
        assert decoded.kind is CommandType.PIM_MUL
        assert decoded.reg == 1

    def test_rsqrt_roundtrip(self):
        bits = encode_extended(Command(CommandType.PIM_RSQRT, dst_reg=0))
        decoded = decode_extended(bits)
        assert decoded.kind is CommandType.PIM_RSQRT

    def test_extended_bit_set(self):
        for kind in EXTENDED:
            assert encode_extended(Command(kind)) >= 32

    def test_base_ops_rejected_by_extended_encoder(self):
        with pytest.raises(IsaError):
            encode_extended(Command(CommandType.PIM_ADD))

    def test_extended_not_in_base_encoder(self):
        with pytest.raises(IsaError):
            encode_command(Command(CommandType.PIM_MUL))

    def test_decode_extended_requires_bit(self):
        with pytest.raises(IsaError):
            decode_extended(0)
