"""GradPIM-unit semantics: scaled reads, ALU, quantize/dequantize."""

import numpy as np
import pytest

from repro.pim.quant import QuantSpec
from repro.pim.scaler import ScalerValue
from repro.pim.unit import (
    GradPIMUnit,
    PIM_LAYOUT,
    PIM_LAYOUT_TOTAL,
    PIM_AREA_OVERHEAD_FRACTION,
)
from repro.errors import SimulationError


def _column(values, dtype=np.float32):
    lanes = np.zeros(64 // np.dtype(dtype).itemsize, dtype=dtype)
    lanes[: len(values)] = values
    return lanes.view(np.uint8)


@pytest.fixture()
def unit():
    return GradPIMUnit(QuantSpec(exponent=-6))


class TestScaledRead:
    def test_identity_load(self, unit):
        unit.scaled_read(_column([1.0, -2.0]), 0, 0)
        out = unit.writeback(0).view(np.float32)
        assert out[0] == 1.0 and out[1] == -2.0

    def test_scaled_load(self, unit):
        unit.scalers.program(1, ScalerValue(sign=-1, n=-1))
        unit.scaled_read(_column([4.0]), 1, 1)
        assert unit.writeback(1).view(np.float32)[0] == -2.0

    def test_rejects_bad_payload(self, unit):
        with pytest.raises(SimulationError):
            unit.scaled_read(np.zeros(8, dtype=np.uint8), 0, 0)


class TestParallelALU:
    def test_add(self, unit):
        unit.scaled_read(_column([1.0, 2.0]), 0, 0)
        unit.scaled_read(_column([10.0, 20.0]), 0, 1)
        unit.parallel_add(0)
        out = unit.writeback(0).view(np.float32)
        assert out[0] == 11.0 and out[1] == 22.0

    def test_sub_direction_follows_dst(self, unit):
        unit.scaled_read(_column([10.0]), 0, 0)
        unit.scaled_read(_column([4.0]), 0, 1)
        unit.parallel_sub(0)
        assert unit.writeback(0).view(np.float32)[0] == 6.0

    def test_sub_other_direction(self, unit):
        unit.scaled_read(_column([10.0]), 0, 0)
        unit.scaled_read(_column([4.0]), 0, 1)
        unit.parallel_sub(1)
        assert unit.writeback(1).view(np.float32)[0] == -6.0

    def test_mul_extension(self, unit):
        unit.scaled_read(_column([3.0]), 0, 0)
        unit.scaled_read(_column([-2.0]), 0, 1)
        unit.parallel_mul(0)
        assert unit.writeback(0).view(np.float32)[0] == -6.0

    def test_rsqrt_extension(self, unit):
        unit.scaled_read(_column([4.0]), 0, 0)
        unit.parallel_rsqrt(0, epsilon=0.0)
        assert unit.writeback(0).view(np.float32)[0] == pytest.approx(0.5)

    def test_rsqrt_epsilon_guards_zero(self, unit):
        unit.scaled_read(_column([0.0]), 0, 0)
        unit.parallel_rsqrt(0, epsilon=1e-8)
        assert np.isfinite(unit.writeback(0).view(np.float32)[0])


class TestQuantPath:
    def test_quantize_fills_position(self, unit):
        unit.scaled_read(_column([0.5] * 16), 0, 0)
        for pos in range(4):
            unit.quantize(0, pos)
        codes = unit.qreg_store().view(np.int8)
        assert np.all(codes == 32)  # 0.5 / 2^-6

    def test_dequantize_reads_position(self, unit):
        codes = np.full(64, 16, dtype=np.int8)  # 0.25 at step 2^-6
        unit.qreg_load(codes.view(np.uint8))
        unit.dequantize(0, 0)
        out = unit.writeback(0).view(np.float32)
        assert np.all(out == 0.25)

    def test_quant_dequant_roundtrip_through_unit(self, unit):
        values = np.linspace(-1.5, 1.5, 16).astype(np.float32)
        unit.scaled_read(values.view(np.uint8), 0, 0)
        unit.quantize(0, 2)
        recovered = GradPIMUnit(unit.quant)
        recovered.regs.write_quant(
            np.zeros(64, dtype=np.uint8)
        )
        recovered.regs.write_quant_slice(
            2, 4, unit.regs.read_quant_slice(2, 4)
        )
        recovered.dequantize(2, 1)
        out = recovered.writeback(1).view(np.float32)
        assert np.max(np.abs(out - values)) <= unit.quant.step / 2 + 1e-7


class TestLayoutConstants:
    def test_table3_modules(self):
        names = [e.module for e in PIM_LAYOUT]
        assert names == [
            "Adder", "Quantize", "Dequantize", "Scaler", "Registers (x3)",
        ]

    def test_table3_total(self):
        assert PIM_LAYOUT_TOTAL.area_um2 == 8267.8
        assert PIM_LAYOUT_TOTAL.power_mw == 1.74

    def test_area_overhead_is_0_01_percent(self):
        assert PIM_AREA_OVERHEAD_FRACTION == pytest.approx(1e-4)
