"""Experiment-harness smoke tests with a reduced context.

Every figure's ``run_*`` must execute and reproduce its headline shape.
A shared small context (2 networks, 8-column samples) keeps this suite
fast; the benchmarks run the full-size versions.
"""

import pytest

from repro.experiments.common import ExperimentContext, fused_update_bytes
from repro.experiments.fig2 import render_fig2, run_fig2
from repro.experiments.fig9 import render_fig9, run_fig9
from repro.experiments.fig10 import render_fig10, run_fig10
from repro.experiments.fig11 import render_fig11, run_fig11
from repro.experiments.fig12 import run_fig12b, run_fig12c
from repro.experiments.fig13 import correlation, render_fig13, run_fig13
from repro.experiments.fig14 import render_fig14, run_fig14
from repro.experiments.tables import render_tables, run_table2, run_table3
from repro.optim import MomentumSGD, SGD
from repro.optim.precision import PRECISION_8_32, PRECISION_FULL
from repro.system.design import DesignPoint


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        columns_per_stripe=8, networks=("ResNet18", "MLP1")
    )


class TestFig2:
    def test_headline_shares(self, ctx):
        result = run_fig2(ctx)
        assert 0.40 <= result.mixed_update_fraction <= 0.55
        assert 0.14 <= result.full_update_fraction <= 0.30
        assert result.last_block_update_fraction > 0.7

    def test_mixed_panel_smaller_than_full(self, ctx):
        result = run_fig2(ctx)
        full = sum(r.total_mb for r in result.full_rows)
        mixed = sum(r.total_mb for r in result.mixed_rows)
        assert mixed < 0.6 * full

    def test_render(self, ctx):
        text = render_fig2(run_fig2(ctx))
        assert "45.9%" in text and "conv0" in text


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return run_fig9(ctx)

    def test_geomeans_in_paper_neighbourhood(self, result):
        assert 1.2 <= result.geomean_overall(
            DesignPoint.GRADPIM_DIRECT
        ) <= 1.8
        assert 1.6 <= result.geomean_overall(
            DesignPoint.GRADPIM_BUFFERED
        ) <= 3.2

    def test_buffered_always_best_gradpim(self, result):
        for name, r in result.networks.items():
            assert r.overall_speedup(
                DesignPoint.GRADPIM_BUFFERED
            ) >= r.overall_speedup(DesignPoint.GRADPIM_DIRECT)

    def test_render(self, result):
        text = render_fig9(result)
        assert "geomean" in text and "Total" in text


class TestFig10:
    def test_normalized_energies(self, ctx):
        result = run_fig10(ctx)
        for name in ctx.networks:
            norm = result.normalized(name)
            assert norm[DesignPoint.BASELINE] == pytest.approx(1.0)
            assert norm[DesignPoint.GRADPIM_BUFFERED] < 1.0
        assert "ACT" in render_fig10(result)


class TestFig11:
    def test_bandwidth_ordering(self, ctx):
        result = run_fig11(ctx)
        assert result.bandwidth(
            DesignPoint.GRADPIM_BUFFERED
        ) > result.bandwidth(DesignPoint.GRADPIM_DIRECT)
        assert result.bandwidth(
            DesignPoint.GRADPIM_DIRECT
        ) > result.bandwidth(DesignPoint.BASELINE)
        assert result.peak_internal / 1e9 == pytest.approx(
            181.3, rel=0.01
        )
        assert "GB/s" in render_fig11(result)


class TestFig12:
    def test_batch_sensitivity(self, ctx):
        result = run_fig12b(ctx)
        for name in ctx.networks:
            assert result[name][16] >= result[name][64] * 0.99

    def test_precision_sensitivity(self, ctx):
        result = run_fig12c(ctx)
        for name in ctx.networks:
            # Full precision gains least (paper Fig. 12c).
            assert result[name]["8/32"] >= result[name]["32/32"]


class TestFig13:
    def test_positive_correlation(self, ctx):
        points = run_fig13(ctx)
        assert correlation(points) > 0.5
        assert "correlation" in render_fig13(points)


class TestFig14:
    def test_distributed_speedups(self, ctx):
        results = run_fig14(ctx)
        for name, r in results.items():
            assert r.speedup > 1.0
        assert "geomean" in render_fig14(results)


class TestTables:
    def test_table2_returns_paper_values(self):
        timing, currents = run_table2()
        assert timing.tPIM == 5
        assert currents.iddpre == 98.0

    def test_table3_totals(self):
        modules, total = run_table3()
        assert len(modules) == 5
        assert total.power_mw == 1.74

    def test_render(self):
        text = render_tables()
        assert "Table II" in text and "Table III" in text


class TestCommonHelpers:
    def test_fused_update_bytes_momentum(self):
        opt = MomentumSGD(eta=0.01, alpha=0.9)
        assert fused_update_bytes(opt, PRECISION_8_32) == 18.0
        assert fused_update_bytes(opt, PRECISION_FULL) == 20.0

    def test_fused_update_bytes_sgd(self):
        assert fused_update_bytes(SGD(eta=0.1), PRECISION_8_32) == 10.0

    def test_update_models_cached_per_grade(self, ctx):
        assert ctx.update_model() is ctx.update_model()
