"""Runner-CLI smoke tests (cheap subset only)."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main


def test_every_figure_registered():
    assert set(EXPERIMENTS) == {
        "tables", "fig2", "fig9", "fig10", "fig11", "fig12", "fig13",
        "fig14",
    }


def test_main_runs_cheap_subset(capsys):
    assert main(["tables", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "update share" in out


def test_main_rejects_unknown(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiments" in capsys.readouterr().out


def test_main_accepts_jobs_flag(capsys):
    assert main(["--jobs", "2", "tables"]) == 0
    assert "Table II" in capsys.readouterr().out


def test_main_accepts_cache_dir(tmp_path, capsys):
    assert main([f"--cache-dir={tmp_path}", "tables"]) == 0
    assert "Table II" in capsys.readouterr().out


def test_main_rejects_bad_jobs(capsys):
    assert main(["--jobs", "zero", "tables"]) == 2
    assert "--jobs" in capsys.readouterr().out


def test_main_rejects_unknown_flag(capsys):
    assert main(["--fidelity", "high"]) == 2
    assert "unknown option" in capsys.readouterr().out


def test_main_accepts_no_validate(capsys):
    assert main(["--no-validate", "tables", "fig2"]) == 0
    assert "Fig. 2" in capsys.readouterr().out


def test_parse_args_no_validate():
    from repro.experiments.runner import parse_args

    assert parse_args(["fig9"]) == (
        ["fig9"], 1, None, True, "incremental", None,
    )
    assert parse_args(["--no-validate", "fig9"]) == (
        ["fig9"], 1, None, False, "incremental", None,
    )
    assert parse_args(["--engine", "periodic", "fig9"]) == (
        ["fig9"], 1, None, True, "periodic", None,
    )
    assert parse_args(["--trace", "out.json", "fig9"]) == (
        ["fig9"], 1, None, True, "incremental", "out.json",
    )
    with pytest.raises(ValueError):
        parse_args(["--engine", "warp-drive", "fig9"])
