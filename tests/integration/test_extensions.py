"""Extension-experiment tests (small sample sizes)."""

import pytest

from repro.experiments.extensions import (
    run_bankgroup_sweep,
    run_channel_sweep,
    run_optimizer_sweep,
    run_schedule_overhead,
)
from repro.optim import Adam
from repro.optim.precision import PRECISION_8_32
from repro.system.design import DesignPoint
from repro.system.training import TrainingSimulator
from repro.system.update_model import UpdatePhaseModel


@pytest.fixture(scope="module")
def bankgroup_points():
    return run_bankgroup_sweep(
        bankgroup_counts=(2, 4, 8), columns_per_stripe=8
    )


def test_bankgroup_speedup_monotone(bankgroup_points):
    speedups = [p.update_speedup for p in bankgroup_points]
    assert speedups == sorted(speedups)


def test_bankgroup_peak_doubles(bankgroup_points):
    by_groups = {p.bankgroups: p for p in bankgroup_points}
    assert by_groups[8].peak_internal_gbps == pytest.approx(
        2 * by_groups[4].peak_internal_gbps
    )


@pytest.fixture(scope="module")
def channel_points():
    return run_channel_sweep(
        channel_counts=(1, 2, 4), columns_per_stripe=8
    )


def test_channel_sweep_update_rate_scales(channel_points):
    """Channels partition the parameters, so the per-parameter update
    rate scales (nearly) linearly with the channel count."""
    by_channels = {p.channels: p for p in channel_points}
    assert by_channels[1].scaling_vs_one_channel == pytest.approx(1.0)
    assert by_channels[2].scaling_vs_one_channel == pytest.approx(
        2.0, rel=1e-6
    )
    assert by_channels[4].scaling_vs_one_channel == pytest.approx(
        4.0, rel=1e-6
    )


def test_channel_sweep_bandwidth_scales(channel_points):
    by_channels = {p.channels: p for p in channel_points}
    assert by_channels[4].peak_internal_gbps == pytest.approx(
        4 * by_channels[1].peak_internal_gbps
    )
    assert by_channels[4].achieved_internal_gbps == pytest.approx(
        4 * by_channels[1].achieved_internal_gbps, rel=1e-6
    )


def test_channel_sweep_speedup_survives_channel_scaling(channel_points):
    """Baseline and GradPIM scale together: the per-design speedup is
    channel-count independent (channels multiply both sides)."""
    speedups = [p.update_speedup for p in channel_points]
    for s in speedups[1:]:
        assert s == pytest.approx(speedups[0], rel=1e-6)


def test_channel_sweep_parallel_workers_identical():
    serial = run_channel_sweep(
        channel_counts=(2,), columns_per_stripe=8
    )
    parallel = run_channel_sweep(
        channel_counts=(2,), columns_per_stripe=8, channel_workers=2
    )
    assert serial == parallel


def test_optimizer_sweep_adam_overhead_is_small():
    """§VIII: multi-pass Adam costs more than momentum but keeps most
    of the speedup ('only a small overhead')."""
    points = {p.name: p for p in run_optimizer_sweep(8)}
    adam, momentum = points["adam"], points["momentum_sgd"]
    assert adam.passes == 3 and momentum.passes == 1
    assert adam.ns_per_param_pim > momentum.ns_per_param_pim
    assert adam.update_speedup > 0.6 * momentum.update_speedup


def test_schedule_overhead_step_is_free():
    points = {p.name: p for p in run_schedule_overhead(1000)}
    assert points["step/2 every 30%"].worst_relative_error == 0.0
    assert points["step/2 every 30%"].reprograms <= 4


def test_adam_through_full_training_simulator(update_model):
    """The whole pipeline accepts adaptive optimizers with the extended
    ALU enabled."""
    model = UpdatePhaseModel(columns_per_stripe=8, extended_alu=True)
    simulator = TrainingSimulator(
        optimizer=Adam(eta=0.001),
        precision=PRECISION_8_32,
        update_model=model,
        designs=(DesignPoint.BASELINE, DesignPoint.GRADPIM_BUFFERED),
    )
    result = simulator.simulate("MLP1")
    assert result.overall_speedup(DesignPoint.GRADPIM_BUFFERED) > 1.5
