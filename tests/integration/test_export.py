"""JSON-export tests."""

import json

import pytest

from repro.experiments.common import ExperimentContext
from repro.experiments.export import EXPORTERS, export_all, main


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        columns_per_stripe=8, networks=("MLP1",)
    )


def test_every_figure_has_an_exporter():
    assert set(EXPORTERS) == {
        "fig2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    }


def test_export_cheap_figures(tmp_path, ctx):
    paths = export_all(
        tmp_path, ctx, figures=("fig2", "fig11", "fig13")
    )
    assert [p.name for p in paths] == [
        "fig2.json", "fig11.json", "fig13.json",
    ]
    for path in paths:
        data = json.loads(path.read_text())
        assert data  # valid, non-empty JSON


def test_fig11_export_structure(tmp_path, ctx):
    (path,) = export_all(tmp_path, ctx, figures=("fig11",))
    data = json.loads(path.read_text())
    assert data["peak_internal_gbps"] == pytest.approx(181.6, rel=0.01)
    assert "GradPIM-BD" in data["designs"]


def test_fig9_export_structure(tmp_path, ctx):
    (path,) = export_all(tmp_path, ctx, figures=("fig9",))
    data = json.loads(path.read_text())
    assert "MLP1" in data["networks"]
    assert "GradPIM-BD" in data["geomeans"]
    assert data["geomeans"]["GradPIM-BD"]["overall"] > 1.0


def test_cli_usage_error(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out
