"""JSON-export tests."""

import json

import pytest

from repro.experiments.common import ExperimentContext
from repro.experiments.export import EXPORTERS, export_all, main


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        columns_per_stripe=8, networks=("MLP1",)
    )


def test_every_figure_has_an_exporter():
    assert set(EXPORTERS) == {
        "fig2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    }


def test_export_cheap_figures(tmp_path, ctx):
    paths = export_all(
        tmp_path, ctx, figures=("fig2", "fig11", "fig13")
    )
    assert [p.name for p in paths] == [
        "fig2.json", "fig11.json", "fig13.json",
    ]
    for path in paths:
        data = json.loads(path.read_text())
        assert data  # valid, non-empty JSON


def test_fig11_export_structure(tmp_path, ctx):
    (path,) = export_all(tmp_path, ctx, figures=("fig11",))
    data = json.loads(path.read_text())
    assert data["peak_internal_gbps"] == pytest.approx(181.6, rel=0.01)
    assert "GradPIM-BD" in data["designs"]


def test_fig9_export_structure(tmp_path, ctx):
    (path,) = export_all(tmp_path, ctx, figures=("fig9",))
    data = json.loads(path.read_text())
    assert "MLP1" in data["networks"]
    assert "GradPIM-BD" in data["geomeans"]
    assert data["geomeans"]["GradPIM-BD"]["overall"] > 1.0


def test_cli_usage_error(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out


def test_main_threads_runner_flags(tmp_path, monkeypatch):
    """Regression: main() must unpack the runner's full parse_args
    tuple (it silently exited 2 on every invocation when the shapes
    diverged) and thread --no-validate/--engine into the context."""
    import repro.experiments.export as export_mod

    seen = {}

    def fake_export_all(out_dir, context):
        seen["jobs"] = context.jobs
        seen["validate"] = context.validate
        seen["engine"] = context.engine
        return []

    monkeypatch.setattr(export_mod, "export_all", fake_export_all)
    assert main([
        "--jobs", "2", "--no-validate", "--engine", "periodic",
        str(tmp_path),
    ]) == 0
    assert seen == {"jobs": 2, "validate": False, "engine": "periodic"}
