"""End-to-end integration: compile -> schedule -> validate -> execute.

The full pipeline on one kernel: the same command stream must (a)
schedule legally on the cycle-level DDR4 model under every issue
configuration and (b) functionally compute the optimizer bit-for-bit.
"""

import copy

import numpy as np
import pytest

from repro.dram.scheduler import CommandScheduler, IssueModel
from repro.dram.timing import DDR4_2133
from repro.dram.validator import validate_trace
from repro.kernels.compiler import UpdateKernelCompiler
from repro.kernels.streams import BaselineStreamGenerator
from repro.kernels.aos import AoSKernelGenerator
from repro.optim import MomentumSGD, interpret_recipe
from repro.optim.precision import PRECISION_8_32
from repro.pim.functional import FunctionalDRAM, FunctionalExecutor

OPT = MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4)


@pytest.fixture(scope="module")
def kernel():
    return UpdateKernelCompiler().compile(
        OPT, PRECISION_8_32, columns_per_stripe=8
    )


class TestScheduleAndValidate:
    def test_pim_kernel_direct(self, kernel, timing, geometry):
        im = IssueModel.direct(geometry.ranks)
        res = CommandScheduler(timing, geometry, im).run(
            copy.deepcopy(kernel.commands)
        )
        validate_trace(
            res.commands, timing, geometry, im.port_of_rank
        )

    def test_pim_kernel_buffered(self, kernel, timing, geometry):
        im = IssueModel.buffered(geometry.ranks)
        res = CommandScheduler(timing, geometry, im).run(
            copy.deepcopy(kernel.commands)
        )
        validate_trace(
            res.commands, timing, geometry, im.port_of_rank
        )

    def test_baseline_stream_validates(self, timing, geometry):
        stream = BaselineStreamGenerator(geometry).generate(
            OPT, PRECISION_8_32, columns_per_stripe=8
        )
        im = IssueModel.direct(geometry.ranks)
        res = CommandScheduler(timing, geometry, im).run(
            copy.deepcopy(stream.commands)
        )
        validate_trace(res.commands, timing, geometry, im.port_of_rank)

    def test_aos_kernels_validate(self, timing, geometry):
        for per_bank in (False, True):
            kern = AoSKernelGenerator(
                geometry, per_bank=per_bank
            ).generate(OPT, PRECISION_8_32, columns_per_unit=8)
            im = IssueModel.buffered(geometry.ranks)
            res = CommandScheduler(
                timing, geometry, im, per_bank_pim=per_bank
            ).run(copy.deepcopy(kern.commands))
            validate_trace(
                res.commands, timing, geometry, im.port_of_rank,
                per_bank_pim=per_bank,
            )

    def test_schedule_is_deterministic(self, kernel, timing, geometry):
        im = IssueModel.direct(geometry.ranks)
        a = CommandScheduler(timing, geometry, im).run(
            copy.deepcopy(kernel.commands)
        )
        b = CommandScheduler(timing, geometry, im).run(
            copy.deepcopy(kernel.commands)
        )
        assert a.issue_cycles() == b.issue_cycles()

    def test_wider_window_never_slower(self, kernel, timing, geometry):
        im = IssueModel.buffered(geometry.ranks)
        narrow = CommandScheduler(
            timing, geometry, im, window=2
        ).run(copy.deepcopy(kernel.commands))
        wide = CommandScheduler(
            timing, geometry, im, window=32
        ).run(copy.deepcopy(kernel.commands))
        assert wide.total_cycles <= narrow.total_cycles * 1.05


class TestScheduledStreamStillComputes:
    def test_functional_result_independent_of_scheduling(self, rng):
        """Scheduling only orders commands; the dependency edges make
        any legal order compute the same bytes. Execute the stream
        after scheduling (annotated issue cycles) and compare."""
        n = 3000
        kernel = UpdateKernelCompiler().compile(
            OPT, PRECISION_8_32, n_params=n
        )
        spec = PRECISION_8_32.quant_spec()
        theta = rng.normal(0, 0.4, n).astype(np.float32)
        grad = rng.normal(0, 0.2, n).astype(np.float32)
        v = rng.normal(0, 0.05, n).astype(np.float32)
        q_grad = spec.quantize(grad)

        dram = FunctionalDRAM()
        kernel.layout.store_hp_array(dram, "theta", theta)
        kernel.layout.store_hp_array(dram, "momentum", v)
        kernel.layout.store_lp_array(dram, "q_grad", q_grad)

        # Schedule first (mutates issue cycles), then execute.
        from repro.dram.geometry import DEFAULT_GEOMETRY

        im = IssueModel.buffered(DEFAULT_GEOMETRY.ranks)
        CommandScheduler(DDR4_2133, DEFAULT_GEOMETRY, im).run(
            kernel.commands
        )
        FunctionalExecutor(dram, spec).execute(kernel.commands)

        env = interpret_recipe(
            OPT.recipe(),
            {
                "theta": theta,
                "grad": spec.dequantize(q_grad),
                "momentum": v,
            },
        )
        np.testing.assert_array_equal(
            kernel.layout.load_hp_array(dram, "theta", np.float32, n),
            env["theta"],
        )
        np.testing.assert_array_equal(
            kernel.layout.load_hp_array(dram, "momentum", np.float32, n),
            env["momentum"],
        )

    def test_steady_state_throughput(self, timing, geometry):
        """The second half of a sample window must not be slower than
        the first (steady state justifies the analytical scaling)."""
        small = UpdateKernelCompiler().compile(
            OPT, PRECISION_8_32, columns_per_stripe=8
        )
        large = UpdateKernelCompiler().compile(
            OPT, PRECISION_8_32, columns_per_stripe=16
        )
        im = IssueModel.buffered(geometry.ranks)
        t_small = CommandScheduler(timing, geometry, im).run(
            copy.deepcopy(small.commands)
        ).total_cycles
        t_large = CommandScheduler(timing, geometry, im).run(
            copy.deepcopy(large.commands)
        ).total_cycles
        # Doubling the work less than doubles the time (fixed overhead
        # amortizes); it must also grow by at least 60%.
        assert t_large < 2.0 * t_small
        assert t_large > 1.6 * t_small
