"""Property-based fuzzing: every compiled stream schedules legally.

Hypothesis drives the compiler across optimizers, precisions, sample
sizes, issue models, scheduler windows, and bus scopes; the independent
JEDEC validator must accept every produced trace. This is the broadest
correctness net in the suite: any disagreement between the scheduler's
state machines and the validator's re-implementation, or any malformed
dependency from the compiler, fails here.
"""

import copy

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dram.geometry import DeviceGeometry
from repro.dram.scheduler import CommandScheduler, IssueModel
from repro.dram.timing import DDR4_2133, DDR4_3200
from repro.dram.validator import validate_trace
from repro.kernels.aos import AoSKernelGenerator
from repro.kernels.compiler import UpdateKernelCompiler
from repro.kernels.streams import BaselineStreamGenerator
from repro.optim import (
    Adam,
    AdamW,
    AdaGrad,
    MomentumSGD,
    NAG,
    RMSprop,
    SGD,
)
from repro.optim.precision import PRECISIONS

GEOM = DeviceGeometry()

_OPTIMIZERS = st.sampled_from(
    [
        SGD(eta=0.01),
        MomentumSGD(eta=0.01, alpha=0.9),
        MomentumSGD(eta=0.04, alpha=0.8, weight_decay=1e-3),
        NAG(eta=0.02, alpha=0.95),
        Adam(eta=0.001),
        AdamW(eta=0.001, weight_decay=0.01),
        AdaGrad(eta=0.05),
        RMSprop(eta=0.01),
    ]
)
_PRECISIONS = st.sampled_from(list(PRECISIONS.values()))
_TIMINGS = st.sampled_from([DDR4_2133, DDR4_3200])
_PORTS = st.sampled_from(["direct", "buffered"])


def _issue_model(kind: str) -> IssueModel:
    if kind == "direct":
        return IssueModel.direct(GEOM.ranks)
    return IssueModel.buffered(GEOM.ranks)


@given(
    opt=_OPTIMIZERS,
    precision=_PRECISIONS,
    timing=_TIMINGS,
    columns=st.integers(min_value=4, max_value=12),
    ports=_PORTS,
    window=st.sampled_from([2, 8, 16]),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_compiled_kernels_always_schedule_legally(
    opt, precision, timing, columns, ports, window
):
    kernel = UpdateKernelCompiler(GEOM, extended_alu=True).compile(
        opt, precision, columns_per_stripe=columns
    )
    im = _issue_model(ports)
    result = CommandScheduler(
        timing, GEOM, im, window=window
    ).run(copy.deepcopy(kernel.commands))
    validate_trace(result.commands, timing, GEOM, im.port_of_rank)


@given(
    opt=_OPTIMIZERS,
    precision=_PRECISIONS,
    columns=st.integers(min_value=4, max_value=12),
    fused=st.booleans(),
    scope=st.sampled_from(["channel", "dimm", "rank"]),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_baseline_streams_always_schedule_legally(
    opt, precision, columns, fused, scope
):
    stream = BaselineStreamGenerator(GEOM).generate(
        opt, precision, columns_per_stripe=columns, fused=fused
    )
    im = IssueModel.buffered(GEOM.ranks)
    result = CommandScheduler(
        DDR4_2133, GEOM, im, data_bus_scope=scope
    ).run(copy.deepcopy(stream.commands))
    validate_trace(
        result.commands, DDR4_2133, GEOM, im.port_of_rank,
        data_bus_scope=scope,
    )


@given(
    per_bank=st.booleans(),
    columns=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=8, deadline=None)
def test_aos_kernels_always_schedule_legally(per_bank, columns):
    kernel = AoSKernelGenerator(GEOM, per_bank=per_bank).generate(
        MomentumSGD(eta=0.01, alpha=0.9),
        PRECISIONS["8/32"],
        columns_per_unit=columns,
    )
    im = IssueModel.buffered(GEOM.ranks)
    result = CommandScheduler(
        DDR4_2133, GEOM, im, per_bank_pim=per_bank
    ).run(copy.deepcopy(kernel.commands))
    validate_trace(
        result.commands, DDR4_2133, GEOM, im.port_of_rank,
        per_bank_pim=per_bank,
    )


@given(
    opt=_OPTIMIZERS,
    precision=_PRECISIONS,
)
@settings(max_examples=10, deadline=None)
def test_kernel_phase_accounting_is_complete(opt, precision):
    """Phase counters sum to the stream length for every kernel."""
    kernel = UpdateKernelCompiler(GEOM, extended_alu=True).compile(
        opt, precision, columns_per_stripe=4
    )
    assert sum(kernel.phase_counts.values()) == kernel.total_commands
