"""EngineReport serde, merge, diff, and the periodic_report shim."""

from __future__ import annotations

import json

from repro.obs.report import (
    FALLBACK_MULTI_CHANNEL,
    FALLBACK_NO_LOCK,
    FALLBACK_REASONS,
    EngineReport,
)


def _sample() -> EngineReport:
    report = EngineReport(engine="periodic")
    report.record_fast_path()
    report.record_fallback(FALLBACK_NO_LOCK)
    report.record_warm_run(24)
    report.record_warm_run(48)
    report.record_extension(1000)
    report.record_scheduling_path("parallel")
    report.record_scheduling_path("")
    return report


def test_reason_constants_are_distinct():
    assert len(set(FALLBACK_REASONS)) == len(FALLBACK_REASONS)


def test_round_trip_is_lossless_and_json_safe():
    report = _sample()
    data = report.to_dict()
    assert json.loads(json.dumps(data)) == data
    assert EngineReport.from_dict(data).to_dict() == data


def test_empty_path_counts_as_serial():
    assert _sample().scheduling_paths == {"parallel": 1, "serial": 1}


def test_merge_adds_counters_and_tables():
    a, b = _sample(), _sample()
    a.merge(b)
    assert a.fast_path == 2
    assert a.warm_runs == 4
    assert a.warm_widths == {"24": 2, "48": 2}
    assert a.fallback_reasons == {FALLBACK_NO_LOCK: 2}
    assert a.sweeps_extended == 2000


def test_diff_dicts_returns_the_delta():
    before = _sample()
    after = EngineReport.from_dict(before.to_dict())
    after.record_fallback(FALLBACK_MULTI_CHANNEL)
    after.record_warm_run(24)
    delta = EngineReport.diff_dicts(before.to_dict(), after.to_dict())
    assert delta == {
        "engine": "periodic",
        "fallback": 1,
        "warm_runs": 1,
        "fallback_reasons": {FALLBACK_MULTI_CHANNEL: 1},
        "warm_widths": {"24": 1},
    }


def test_diff_dicts_none_when_nothing_happened():
    snap = _sample().to_dict()
    assert EngineReport.diff_dicts(snap, snap) is None


def test_periodic_report_shim_pins_legacy_keys(update_model):
    """Regression: the deprecated ``periodic_report`` property must
    keep exposing the original dict keys, backed by the new report."""
    legacy = update_model.periodic_report
    assert set(legacy) == {"fast_path", "fallback", "warm_runs"}
    assert legacy["fast_path"] == update_model.report.fast_path
    assert legacy["fallback"] == update_model.report.fallback
    assert legacy["warm_runs"] == update_model.report.warm_runs
    # The exact idiom bench_profile.py uses must keep working.
    assert isinstance(dict(update_model.periodic_report), dict)
