"""Live worker-pool observability: spans and metrics cross the fork.

These run real jobs through ``repro.service.pool.run_specs`` with
tracing enabled and assert the workers' telemetry arrives intact in
the parent — the cross-process half of the obs subsystem that unit
tests can't cover.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import default_registry
from repro.obs.trace import (
    disable_tracing,
    enable_tracing,
    validate_chrome_trace,
)
from repro.service.api import submit_many
from repro.service.pool import run_specs
from repro.service.spec import SimJobSpec

CHEAP = dict(columns_per_stripe=8, designs=("Baseline", "GradPIM-BD"))


@pytest.fixture(scope="module")
def specs():
    return [
        SimJobSpec(network="MLP1", batch=b, **CHEAP) for b in (16, 32)
    ]


def test_worker_spans_and_metrics_arrive_intact(specs):
    tracer = enable_tracing()
    payloads = run_specs(specs, jobs=2)
    assert all(p["status"] == "ok" for p in payloads)
    # Telemetry was consumed into the parent, not left on payloads.
    assert all("obs" not in p for p in payloads)
    names = tracer.span_names()
    assert "pool.dispatch" in names
    assert "pool.execute" in names  # shipped back from the workers
    executes = [s for s in tracer.spans() if s.name == "pool.execute"]
    assert len(executes) == len(specs)
    # Worker metrics merged into the parent's default registry.
    registry = default_registry()
    assert (
        registry.counter_value("jobs_executed_total", {"status": "ok"})
        == len(specs)
    )
    hist = registry.histogram("job_execute_seconds", {"status": "ok"})
    assert hist is not None and hist.count == len(specs)
    # The assembled trace is Perfetto-loadable.
    assert validate_chrome_trace(tracer.to_chrome_trace()) == []


def test_serial_and_parallel_results_identical_with_tracing(specs):
    enable_tracing()
    parallel = run_specs(specs, jobs=2)
    disable_tracing()
    serial = run_specs(specs, jobs=1)
    for p, s in zip(parallel, serial):
        # elapsed time and execution mode are run metadata, not
        # simulation content.
        meta = ("elapsed_seconds", "execution_mode")
        p = {k: v for k, v in p.items() if k not in meta}
        s = {k: v for k, v in s.items() if k not in meta}
        assert json.dumps(p, sort_keys=True) == json.dumps(
            s, sort_keys=True
        )


def test_traced_submit_covers_the_full_path(tmp_path):
    """End-to-end: a traced submit_many produces a valid trace whose
    spans cover submit → cache lookup → dispatch → build → schedule →
    validate → cache write."""
    from repro.service.cache import ResultCache

    # A stripe width no other test uses: the substrate must be cold so
    # the workers actually profile (memoized profiles skip the
    # model/engine spans by design).
    cold = [
        SimJobSpec(
            network="MLP1",
            batch=b,
            columns_per_stripe=12,
            designs=("Baseline", "GradPIM-BD"),
        )
        for b in (16, 32)
    ]
    tracer = enable_tracing()
    results = submit_many(
        cold, jobs=2, cache=ResultCache(directory=str(tmp_path))
    )
    assert all(r.ok for r in results)
    names = tracer.span_names()
    for expected in (
        "service.submit",
        "service.cache_lookup",
        "service.cache_write",
        "pool.dispatch",
        "pool.execute",
        "model.profile",
        "model.build_stream",
        "engine.schedule",
        "engine.validate",
    ):
        assert expected in names, f"missing span {expected}"
    out = tracer.write(tmp_path / "trace.json")
    trace = json.loads(out.read_text())
    assert validate_chrome_trace(trace) == []


def test_engine_report_rides_the_result_envelope(tmp_path):
    """A periodic-engine job's flight-recorder delta reaches the
    service result (and survives its serde round trip)."""
    from repro.service.cache import ResultCache

    spec = SimJobSpec(network="MLP1", engine="periodic", **CHEAP)
    cache = ResultCache(directory=str(tmp_path))
    (result,) = submit_many([spec], jobs=1, cache=cache)
    assert result.ok
    report = result.engine_report
    assert report is not None and report["engine"] == "periodic"
    assert report.get("fast_path", 0) + report.get("fallback", 0) > 0
    envelope = result.to_dict()
    assert envelope["engine_report"] == report
    # A cache hit re-serves the result without a fresh report.
    (hit,) = submit_many([spec], jobs=1, cache=cache)
    assert hit.from_cache and hit.engine_report is None
