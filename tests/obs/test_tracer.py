"""Tracer unit tests: spans, export, schema, cross-process shipping."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.errors import SimulationError
from repro.obs.trace import (
    Span,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    span,
    validate_chrome_trace,
    validate_json,
)


def test_span_context_manager_records():
    tracer = Tracer()
    with tracer.span("work", kind="unit"):
        pass
    (recorded,) = tracer.spans()
    assert recorded.name == "work"
    assert recorded.args == {"kind": "unit"}
    assert recorded.dur_ns >= 0
    assert recorded.pid == os.getpid()
    assert recorded.tid == threading.get_ident()


def test_span_set_attaches_args_mid_span():
    tracer = Tracer()
    with tracer.span("lookup") as live:
        live.set(disposition="cache-hit")
    (recorded,) = tracer.spans()
    assert recorded.args["disposition"] == "cache-hit"


def test_span_records_error_on_exception():
    tracer = Tracer()
    with pytest.raises(SimulationError):
        with tracer.span("boom"):
            raise SimulationError("deadlock")
    (recorded,) = tracer.spans()
    assert recorded.args["error"] == "SimulationError"


def test_module_span_is_noop_when_disabled():
    assert active_tracer() is None
    ctx = span("ignored", a=1)
    with ctx as live:
        live.set(b=2)  # must not raise
    assert span("again") is ctx  # one shared no-op object


def test_enable_disable_round_trip():
    tracer = enable_tracing()
    assert active_tracer() is tracer
    with span("visible"):
        pass
    assert disable_tracing() is tracer
    assert active_tracer() is None
    assert tracer.span_names() == {"visible"}


def test_span_serde_round_trip():
    original = Span(
        name="x", start_ns=10, dur_ns=5, pid=1, tid=2, args={"k": "v"}
    )
    assert Span.from_dict(original.to_dict()) == original


def test_drain_and_ingest_ship_spans_across_tracers():
    worker = Tracer()
    with worker.span("remote.work"):
        pass
    shipped = worker.drain()
    assert len(worker) == 0
    assert json.loads(json.dumps(shipped)) == shipped  # JSON-safe
    parent = Tracer()
    assert parent.ingest(shipped) == 1
    assert parent.span_names() == {"remote.work"}


def test_chrome_export_validates_and_converts_units():
    tracer = Tracer()
    tracer.add_span(
        Span(name="n", start_ns=2_000, dur_ns=1_000, pid=1, tid=1)
    )
    trace = tracer.to_chrome_trace()
    assert validate_chrome_trace(trace) == []
    event = next(e for e in trace["traceEvents"] if e["ph"] == "X")
    assert event["ts"] == 2.0 and event["dur"] == 1.0  # ns -> µs
    meta = next(e for e in trace["traceEvents"] if e["ph"] == "M")
    assert meta["name"] == "process_name"


def test_worker_pids_get_their_own_named_track(tmp_path):
    tracer = Tracer()
    me = os.getpid()
    tracer.add_span(Span(name="a", start_ns=0, dur_ns=1, pid=me, tid=1))
    tracer.add_span(
        Span(name="b", start_ns=0, dur_ns=1, pid=me + 1, tid=1)
    )
    out = tracer.write(tmp_path / "trace.json")
    trace = json.loads(out.read_text())
    names = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M"
    }
    assert names == {f"repro [{me}]", f"repro-worker [{me + 1}]"}
    assert validate_chrome_trace(trace) == []


def test_validate_json_reports_violations():
    schema = {
        "type": "object",
        "required": ["traceEvents"],
        "properties": {
            "traceEvents": {
                "type": "array",
                "items": {
                    "type": "object",
                    "required": ["ph"],
                    "properties": {"ph": {"enum": ["X", "M"]}},
                },
            }
        },
    }
    assert validate_json({"traceEvents": []}, schema) == []
    assert validate_json({}, schema)  # missing required
    errors = validate_json({"traceEvents": [{"ph": "Q"}]}, schema)
    assert any("enum" in e for e in errors)
