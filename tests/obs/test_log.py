"""JSON structured logging + correlation-id propagation."""

from __future__ import annotations

import io
import json
import logging
import os

from repro.obs.log import (
    JsonFormatter,
    configure_json_logging,
    correlation_scope,
    get_correlation_id,
    get_logger,
    set_correlation_id,
)


def _teardown():
    set_correlation_id(None)
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.propagate = True


def test_correlation_scope_nests_and_restores():
    try:
        assert get_correlation_id() is None
        with correlation_scope("outer"):
            assert get_correlation_id() == "outer"
            with correlation_scope("inner"):
                assert get_correlation_id() == "inner"
            assert get_correlation_id() == "outer"
        assert get_correlation_id() is None
    finally:
        _teardown()


def test_json_lines_carry_structure_and_correlation():
    stream = io.StringIO()
    try:
        configure_json_logging(stream=stream)
        logger = get_logger("repro.test")
        with correlation_scope("abc123"):
            logger.info("job executed", extra={"network": "MLP1"})
        record = json.loads(stream.getvalue())
        assert record["message"] == "job executed"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test"
        assert record["correlation_id"] == "abc123"
        assert record["network"] == "MLP1"
        assert record["pid"] == os.getpid()
        assert "ts" in record
    finally:
        _teardown()


def test_configure_is_idempotent():
    a, b = io.StringIO(), io.StringIO()
    try:
        configure_json_logging(stream=a)
        configure_json_logging(stream=b)  # replaces, not stacks
        get_logger("repro.test").info("once")
        assert a.getvalue() == ""
        assert len(b.getvalue().strip().splitlines()) == 1
    finally:
        _teardown()


def test_exceptions_render_as_strings():
    stream = io.StringIO()
    formatter = JsonFormatter()
    logger = logging.getLogger("repro.exc-test")
    logger.propagate = False
    handler = logging.StreamHandler(stream)
    handler.setFormatter(formatter)
    logger.addHandler(handler)
    try:
        try:
            raise ValueError("bad value")
        except ValueError:
            logger.exception("job failed")
        record = json.loads(stream.getvalue())
        assert record["level"] == "ERROR"
        assert "ValueError: bad value" in record["exc"]
    finally:
        logger.removeHandler(handler)


def test_silent_without_configuration(capsys):
    get_logger("repro.test").info("should go nowhere visible")
    captured = capsys.readouterr()
    assert "should go nowhere" not in captured.out
    assert "should go nowhere" not in captured.err
