"""StreamingHistogram merge + cross-process registry aggregation."""

from __future__ import annotations

import json
import multiprocessing
import random

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    StreamingHistogram,
    default_registry,
    parse_prometheus,
    set_default_registry,
)


# ---------------------------------------------------------------------
# Histogram serde + merge
# ---------------------------------------------------------------------
def test_histogram_round_trips_losslessly():
    hist = StreamingHistogram()
    rng = random.Random(42)
    for _ in range(500):
        hist.record(rng.lognormvariate(0, 2))
    hist.record(0.0)  # underflow bucket
    clone = StreamingHistogram.from_dict(hist.to_dict())
    assert clone.to_dict() == hist.to_dict()
    for q in (0.5, 0.95, 0.99):
        assert clone.quantile(q) == hist.quantile(q)


def test_histogram_merge_equals_single_stream():
    """Merging shards must reproduce the one-stream histogram exactly
    (same buckets ⇒ same counts and quantiles; the float ``sum`` may
    differ in the last bits from addition order)."""
    rng = random.Random(7)
    values = [rng.lognormvariate(-1, 3) for _ in range(900)]
    reference = StreamingHistogram()
    for v in values:
        reference.record(v)
    shards = [StreamingHistogram() for _ in range(3)]
    for i, v in enumerate(values):
        shards[i % 3].record(v)
    merged = shards[0]
    merged.merge(shards[1])
    merged.merge(shards[2])
    ref, got = reference.to_dict(), merged.to_dict()
    assert got["counts"] == ref["counts"]
    assert got["count"] == ref["count"]
    assert got["min"] == ref["min"]
    assert got["max"] == ref["max"]
    assert got["sum"] == pytest.approx(ref["sum"])
    for q in (0.5, 0.95, 0.99):
        assert merged.quantile(q) == reference.quantile(q)


def test_histogram_merge_rejects_layout_mismatch():
    a = StreamingHistogram()
    b = StreamingHistogram(lo=1.0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_merge_folds_exact_accumulators():
    """min/max/mean/stddev stay exact across a merge — the merged
    histogram agrees with one that saw the whole stream."""
    rng = random.Random(11)
    values = [rng.lognormvariate(-2, 1) for _ in range(400)]
    reference = StreamingHistogram()
    for v in values:
        reference.record(v)
    left, right = StreamingHistogram(), StreamingHistogram()
    for i, v in enumerate(values):
        (left if i % 2 else right).record(v)
    left.merge(right)
    assert left.min == reference.min
    assert left.max == reference.max
    assert left.mean == pytest.approx(reference.mean)
    assert left.stddev == pytest.approx(reference.stddev)


def test_version1_snapshot_still_accepted():
    """A snapshot from before the sum_sq accumulator (version 1) must
    still merge: counts/quantiles exact, variance merely undercounted
    for the legacy share."""
    hist = StreamingHistogram()
    for v in (0.01, 0.1, 1.0):
        hist.record(v)
    legacy = hist.to_dict()
    legacy.pop("sum_sq")  # exactly what a v1 writer produced
    clone = StreamingHistogram.from_dict(legacy)
    assert clone.count == hist.count
    assert clone.min == hist.min
    assert clone.max == hist.max
    assert clone.quantile(0.5) == hist.quantile(0.5)
    assert clone.sum_sq == 0.0

    reg = MetricsRegistry("repro")
    snap = _populated_registry().snapshot()
    snap["version"] = 1
    reg.merge_snapshot(snap)  # accepted, not raised
    assert reg.counter_value("jobs_total", {"status": "ok"}) == 3


# ---------------------------------------------------------------------
# Registry snapshot / merge
# ---------------------------------------------------------------------
def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry("repro")
    reg.inc("jobs_total", {"status": "ok"}, value=3)
    reg.inc("jobs_total", {"status": "error"})
    for v in (0.01, 0.1, 1.0, 10.0):
        reg.observe("latency_seconds", v, {"endpoint": "submit"})
    return reg


def test_snapshot_merge_counters_add():
    parent = _populated_registry()
    worker = _populated_registry()
    parent.merge_snapshot(worker.snapshot())
    assert parent.counter_value("jobs_total", {"status": "ok"}) == 6
    assert parent.counter_value("jobs_total", {"status": "error"}) == 2


def test_snapshot_merge_histograms_double_counts():
    parent = _populated_registry()
    parent.merge_snapshot(_populated_registry().snapshot())
    (hist,) = [
        h
        for labels, h in parent.histograms("latency_seconds")
        if labels == {"endpoint": "submit"}
    ]
    assert hist.count == 8


def test_snapshot_merge_adopts_unknown_families():
    parent = MetricsRegistry("repro")
    parent.merge_snapshot(_populated_registry().snapshot())
    assert parent.counter_value("jobs_total", {"status": "ok"}) == 3
    rendered = parent.render()
    assert "repro_jobs_total" in rendered
    assert "repro_latency_seconds" in rendered


def test_snapshot_is_json_safe():
    snap = _populated_registry().snapshot()
    assert json.loads(json.dumps(snap)) == snap


def test_snapshot_version_gate():
    parent = MetricsRegistry("repro")
    snap = _populated_registry().snapshot()
    snap["version"] = 999
    with pytest.raises(ValueError):
        parent.merge_snapshot(snap)


def test_merged_registry_renders_valid_prometheus():
    parent = _populated_registry()
    parent.merge_snapshot(_populated_registry().snapshot())
    families = parse_prometheus(parent.render())
    assert families["repro_jobs_total"]['{status="ok"}'] == 6


# ---------------------------------------------------------------------
# The process-global default registry
# ---------------------------------------------------------------------
def test_default_registry_is_process_global():
    default_registry().inc("pings_total")
    assert default_registry().counter_value("pings_total") == 1
    previous = set_default_registry(MetricsRegistry("repro"))
    assert previous is not None
    assert previous.counter_value("pings_total") == 1
    assert default_registry().counter_value("pings_total") == 0


def _fork_child(queue) -> None:
    reg = MetricsRegistry("repro")
    reg.inc("child_jobs_total", value=2)
    reg.observe("child_seconds", 0.5)
    queue.put(reg.snapshot())


def test_cross_process_counter_aggregation():
    """A snapshot produced in a real forked child merges losslessly."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        pytest.skip("platform without fork")
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_fork_child, args=(queue,)) for _ in range(2)
    ]
    for p in procs:
        p.start()
    snaps = [queue.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
    parent = default_registry()
    for snap in snaps:
        parent.merge_snapshot(snap)
    assert parent.counter_value("child_jobs_total") == 4
    (hist,) = [h for _, h in parent.histograms("child_seconds")]
    assert hist.count == 2
