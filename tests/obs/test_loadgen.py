"""Unit tests for the load-generation harness (no live server).

Covers the deterministic pieces: arrival schedules, spec mixes, the
latency recorder's percentile spectrum, /metrics diff attribution,
knee detection, and LoadReport serde + schema validation.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs.loadgen import (
    LatencyRecorder,
    LoadReport,
    LoadgenOptions,
    SpecMix,
    SweepOptions,
    arrival_offsets,
    detect_knee,
    diff_scrapes,
    geometric_rates,
    quantile_label,
    scrape,
    validate_load_report,
)
from repro.service.spec import SimJobSpec


# ---------------------------------------------------------------------
# Arrival schedules
# ---------------------------------------------------------------------
class TestArrival:
    def test_poisson_is_seeded_and_monotonic(self):
        a = arrival_offsets("poisson", 100.0, 50, seed=3)
        b = arrival_offsets("poisson", 100.0, 50, seed=3)
        c = arrival_offsets("poisson", 100.0, 50, seed=4)
        assert a == b
        assert a != c
        assert a == sorted(a)
        assert all(offset >= 0 for offset in a)

    def test_poisson_mean_gap_tracks_rate(self):
        offsets = arrival_offsets("poisson", 200.0, 4000, seed=0)
        mean_gap = offsets[-1] / (len(offsets) - 1)
        assert mean_gap == pytest.approx(1 / 200.0, rel=0.1)

    def test_uniform_is_exact(self):
        assert arrival_offsets("uniform", 10.0, 4, seed=9) == [
            0.0,
            0.1,
            0.2,
            pytest.approx(0.3),
        ]

    def test_closed_without_rate_is_all_zero(self):
        assert arrival_offsets("closed", None, 3, seed=0) == [0, 0, 0]

    def test_bad_inputs_raise(self):
        with pytest.raises(ConfigError):
            arrival_offsets("bursty", 10.0, 5)
        with pytest.raises(ConfigError):
            arrival_offsets("poisson", None, 5)
        with pytest.raises(ConfigError):
            arrival_offsets("poisson", -1.0, 5)


# ---------------------------------------------------------------------
# Spec mixes
# ---------------------------------------------------------------------
class TestSpecMix:
    def test_stream_is_deterministic_and_prefix_stable(self):
        mix = SpecMix(seed=5)
        long = mix.generate(60)
        short = mix.generate(20)
        assert long[:20] == short
        assert long == SpecMix(seed=5).generate(60)

    def test_every_spec_validates(self):
        mix = SpecMix(
            seed=2,
            hot_fraction=0.4,
            periodic_fraction=0.5,
            optimizers={"adam": 1.0, "sgd": 1.0},
            engines={"incremental": 1.0, "periodic": 1.0},
        )
        for spec, kind in mix.generate(40):
            SimJobSpec.from_dict(spec)
            assert kind in ("hot", "cold", "cold-periodic")

    def test_hot_requests_share_one_content_identity(self):
        mix = SpecMix(seed=1, hot_fraction=0.5)
        stream = mix.generate(80)
        hot = [s for s, kind in stream if kind == "hot"]
        cold = [s for s, kind in stream if kind == "cold"]
        assert len({json.dumps(s, sort_keys=True) for s in hot}) == 1
        # Cold specs are pairwise distinct and never collide with hot.
        blobs = {json.dumps(s, sort_keys=True) for s in cold}
        assert len(blobs) == len(cold)
        assert json.dumps(hot[0], sort_keys=True) not in blobs

    def test_cold_offset_shifts_cold_only(self):
        base = SpecMix(seed=3, hot_fraction=0.5)
        shifted = SpecMix(seed=3, hot_fraction=0.5, cold_offset=1000)
        for (a, ka), (b, kb) in zip(
            base.generate(40), shifted.generate(40)
        ):
            assert ka == kb
            if ka == "cold":
                assert b["batch"] == a["batch"] + 1000
            else:
                assert a == b

    def test_periodic_pool_cycles(self):
        mix = SpecMix(
            seed=0,
            hot_fraction=0.0,
            periodic_fraction=1.0,
            periodic_pool=3,
        )
        stream = mix.generate(9)
        assert all(kind == "cold-periodic" for _, kind in stream)
        batches = [spec["batch"] for spec, _ in stream]
        assert batches == batches[:3] * 3

    def test_bad_recipes_fail_eagerly(self):
        with pytest.raises(ConfigError):
            SpecMix(hot_fraction=1.5)
        with pytest.raises(ConfigError):
            SpecMix(hot_batch=600)  # violates hot < periodic < cold
        with pytest.raises(ConfigError):
            SpecMix(cold_offset=-1)
        with pytest.raises(Exception):
            SpecMix(optimizers={"definitely-not-real": 1.0})


# ---------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------
class TestLatencyRecorder:
    def test_spectrum_labels(self):
        assert quantile_label(0.5) == "p50"
        assert quantile_label(0.999) == "p99.9"
        assert quantile_label(0.9999) == "p99.99"

    def test_spectrum_is_monotone_and_exact_at_edges(self):
        recorder = LatencyRecorder()
        values = [0.001 * (i + 1) for i in range(1000)]
        for v in values:
            recorder.record(v)
        spectrum = recorder.spectrum()
        assert spectrum["count"] == 1000
        assert spectrum["min"] == 0.001
        assert spectrum["max"] == 1.0
        assert spectrum["mean"] == pytest.approx(0.5005)
        quantiles = [
            spectrum[k]
            for k in ("p50", "p90", "p95", "p99", "p99.9", "p99.99")
        ]
        assert quantiles == sorted(quantiles)
        assert spectrum["p50"] == pytest.approx(0.5, rel=0.1)

    def test_round_trip_preserves_type_and_spectrum(self):
        recorder = LatencyRecorder()
        recorder.record(0.02)
        clone = LatencyRecorder.from_dict(recorder.to_dict())
        assert isinstance(clone, LatencyRecorder)
        assert clone.spectrum() == recorder.spectrum()


# ---------------------------------------------------------------------
# Attribution
# ---------------------------------------------------------------------
def _exposition(count, total, cache_hits, queued, executions):
    return "\n".join(
        [
            f"repro_server_queue_wait_seconds_count {count}",
            f"repro_server_queue_wait_seconds_sum {total / 2}",
            f"repro_server_execute_seconds_count {count}",
            f"repro_server_execute_seconds_sum {total}",
            f"repro_server_cache_hits_total {cache_hits}",
            f"repro_server_queued_total {queued}",
            f"repro_server_executions_total {executions}",
            "repro_server_engine_lock_attempts_total 5",
            "",
        ]
    )


class TestAttribution:
    def test_diff_is_the_delta_not_the_level(self):
        before = scrape(_exposition(10, 1.0, 90, 10, 10))
        after = scrape(_exposition(14, 3.0, 96, 14, 14))
        attribution = diff_scrapes(before, after)
        assert attribution.stages["execute"]["count"] == 4
        assert attribution.stages["execute"]["sum_seconds"] == (
            pytest.approx(2.0)
        )
        assert attribution.counters["cache_hits"] == 6
        assert attribution.counters["queued"] == 4
        # Engine family unchanged -> not reported.
        assert attribution.engine == {}

    def test_per_request_decomposition(self):
        before = scrape(_exposition(0, 0.0, 0, 0, 0))
        after = scrape(_exposition(5, 2.0, 15, 5, 5))
        per = diff_scrapes(before, after).per_request()
        assert per["jobs"] == 20
        assert per["cache_path_fraction"] == pytest.approx(0.75)
        assert per["execute_seconds"] == pytest.approx(2.0 / 20)
        assert per["queue_fraction"] + per["execute_fraction"] == (
            pytest.approx(1.0)
        )

    def test_missing_families_attribute_to_zero(self):
        empty = diff_scrapes(scrape(""), scrape(""))
        assert empty.stages["queue"]["sum_seconds"] == 0.0
        assert empty.per_request()["jobs"] == 0


# ---------------------------------------------------------------------
# Sweep / knee
# ---------------------------------------------------------------------
def _point(rate, p99=0.01, late=0.0, failures=0):
    return {
        "rate": rate,
        "throughput_rps": rate * 0.95,
        "p50": p99 / 2,
        "p95": p99 * 0.9,
        "p99": p99,
        "p99.9": p99 * 1.1,
        "late_fraction": late,
        "failures": failures,
    }


class TestKnee:
    def test_clean_curve_has_no_knee(self):
        curve = [_point(r) for r in (10, 20, 40)]
        assert detect_knee(curve, 0.25, 0.1) is None

    def test_p99_violation_names_last_good_rate(self):
        curve = [_point(10), _point(20), _point(40, p99=0.4)]
        knee = detect_knee(curve, 0.25, 0.1)
        assert knee["rate"] == 40
        assert knee["reason"] == "p99-slo"
        assert knee["last_good_rate"] == 20

    def test_failures_trump_latency(self):
        curve = [_point(10, p99=0.4, failures=2)]
        knee = detect_knee(curve, 0.25, 0.1)
        assert knee["reason"] == "failures"
        assert knee["last_good_rate"] is None

    def test_late_sends_are_a_saturation_signal(self):
        curve = [_point(10), _point(20, late=0.5)]
        assert detect_knee(curve, 0.25, 0.1)["reason"] == "late-sends"

    def test_sweep_options_validate(self):
        with pytest.raises(ConfigError):
            SweepOptions(rates=[])
        with pytest.raises(ConfigError):
            SweepOptions(rates=[40, 20])  # not ascending
        with pytest.raises(ConfigError):
            SweepOptions(rates=[10], max_late_fraction=0.0)
        assert geometric_rates(100.0, [0.5, 1.0, 2.0]) == [
            50.0,
            100.0,
            200.0,
        ]
        with pytest.raises(ConfigError):
            geometric_rates(0.0, [1.0])


class TestLoadgenOptions:
    def test_open_loop_needs_a_rate(self):
        with pytest.raises(ConfigError):
            LoadgenOptions(process="poisson", rate=None)
        LoadgenOptions(process="closed", rate=None)  # fine

    def test_rejects_nonsense(self):
        with pytest.raises(ConfigError):
            LoadgenOptions(requests=0)
        with pytest.raises(ConfigError):
            LoadgenOptions(workers=0)
        with pytest.raises(ConfigError):
            LoadgenOptions(late_tolerance_seconds=0.0)


# ---------------------------------------------------------------------
# LoadReport serde + schema
# ---------------------------------------------------------------------
def _minimal_run(rate):
    recorder = LatencyRecorder()
    recorder.record(0.01)
    spectrum = recorder.spectrum()
    return {
        "process": "poisson",
        "target_rate": rate,
        "requests": 1,
        "seed": 0,
        "workers": 1,
        "duration_seconds": 0.5,
        "sent": 1,
        "completed": 1,
        "failures": 0,
        "late_sends": 0,
        "late_fraction": 0.0,
        "retries": 0,
        "achieved_rps": 2.0,
        "latency": spectrum,
        "service_latency": spectrum,
        "per_kind": {},
        "client": {},
        "attribution": None,
    }


class TestLoadReport:
    def _report(self):
        return LoadReport(
            seed=0,
            process="poisson",
            mix=SpecMix().describe(),
            slo={"p99_seconds": 0.25, "max_late_fraction": 0.1},
            runs=[_minimal_run(10.0)],
            curve=[_point(10.0)],
            knee=None,
            closed_loop=None,
        )

    def test_round_trip(self):
        report = self._report()
        clone = LoadReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()

    def test_validates_against_checked_in_schema(self):
        assert validate_load_report(self._report().to_dict()) == []

    def test_schema_rejects_mutations(self):
        data = self._report().to_dict()
        del data["curve"]
        assert validate_load_report(data)
        data = self._report().to_dict()
        data["knee"] = {"rate": 1.0, "reason": "vibes"}
        assert validate_load_report(data)

    def test_version_gate(self):
        data = self._report().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError):
            LoadReport.from_dict(data)

    def test_build_stamp_present(self):
        build = self._report().to_dict()["build"]
        assert build["version"]
        assert build["python"]
        assert build["load_report_schema"] == "1"
