"""Observability tests: keep the process-global state isolated."""

from __future__ import annotations

import pytest

from repro.obs.metrics import set_default_registry
from repro.obs.trace import disable_tracing


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Reset the global tracer and default registry around each test."""
    set_default_registry(None)
    disable_tracing()
    yield
    set_default_registry(None)
    disable_tracing()
