"""Client resilience: jittered capped retries, deadline-aware waiting."""

import json
import random
import time

import pytest

from repro.server.client import ServerClient, ServerError


def _client(**kwargs) -> ServerClient:
    return ServerClient("http://127.0.0.1:1", **kwargs)


class TestRetrySleep:
    def test_jittered_sleep_never_exceeds_cap(self):
        client = _client(
            retry_after_cap=2.5, retry_jitter=0.5, rng=random.Random(7)
        )
        sleeps = [client._retry_sleep(base) for base in
                  (0.0, 0.5, 1.0, 2.4, 2.5, 30.0, 1e9)]
        assert all(0.0 <= s <= 2.5 for s in sleeps)
        assert sleeps[-1] == 2.5  # a pathological header is capped

    def test_jitter_spreads_around_base(self):
        client = _client(retry_jitter=0.1, rng=random.Random(3))
        sleeps = {client._retry_sleep(1.0) for _ in range(64)}
        assert len(sleeps) > 1  # actually jittered
        assert all(0.9 <= s <= 1.1 for s in sleeps)

    def test_zero_jitter_is_exact(self):
        client = _client(retry_jitter=0.0, retry_after_cap=10.0)
        assert client._retry_sleep(3.0) == 3.0
        assert client._retry_sleep(30.0) == 10.0

    def test_submit_sleeps_jittered_and_capped(self, monkeypatch):
        client = _client(
            max_retries=3, retry_after_cap=0.001, rng=random.Random(5)
        )
        body = json.dumps({"accepted": 0, "jobs": []})

        def always_full(method, path, payload=None, timeout=None):
            return 503, {"Retry-After": "1000"}, body

        sleeps = []
        monkeypatch.setattr(client, "_request", always_full)
        monkeypatch.setattr(time, "sleep", sleeps.append)
        with pytest.raises(ServerError) as info:
            client.submit({"network": "MLP1"})
        assert info.value.status == 503
        assert len(sleeps) == 3  # one per retry, none after the last
        assert all(0.0 <= s <= 0.001 for s in sleeps)


class TestWaitFor:
    def _scripted(self, statuses):
        client = _client()
        client.job = lambda job_id: {
            "id": job_id, "status": statuses[job_id]
        }
        return client

    def test_classified_failures_are_terminal(self):
        client = self._scripted({
            "a": "done", "b": "timed_out", "c": "quarantined",
            "d": "error",
        })
        finals = client.wait_for(["a", "b", "c", "d"], timeout=1.0)
        assert [f["status"] for f in finals] == [
            "done", "timed_out", "quarantined", "error"
        ]

    def test_deadline_overrides_timeout(self):
        client = self._scripted({"a": "running"})
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            client.wait_for(["a"], timeout=60.0, deadline=0.05)
        assert time.monotonic() - start < 5.0
