"""Injector semantics: determinism, guards, and the text mutators."""

import json

import pytest

from repro import faults
from repro.faults import FaultInjector, FaultPlan, FaultRule


def _decisions(seed: int, rate: float, n: int = 32) -> list[bool]:
    injector = FaultInjector(FaultPlan(
        seed=seed, rules=(FaultRule(faults.ENGINE_SLOW, rate=rate),)
    ))
    return [
        injector.check(faults.ENGINE_SLOW) is not None for _ in range(n)
    ]


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        assert _decisions(3, 0.5) == _decisions(3, 0.5)

    def test_different_seed_different_decisions(self):
        assert _decisions(3, 0.5) != _decisions(4, 0.5)

    def test_rate_extremes(self):
        assert not any(_decisions(0, 0.0))
        assert all(_decisions(0, 1.0))

    def test_max_fires_caps(self):
        assert sum(_decisions_with(max_fires=2)) == 2

    def test_after_skips_warmup(self):
        fired = _decisions_with(after=5)
        assert not any(fired[:5]) and all(fired[5:])

    def test_attempt_bound(self):
        injector = faults.install(FaultPlan(rules=(
            FaultRule(faults.ENGINE_SLOW, max_attempt=1),
        )))
        faults.enter_worker_context(0)
        try:
            assert faults.fire(faults.ENGINE_SLOW) is not None
            faults.enter_worker_context(1)  # retry attempt: past bound
            assert faults.fire(faults.ENGINE_SLOW) is None
        finally:
            faults.exit_worker_context()
        assert injector.fired(faults.ENGINE_SLOW) == 1


def _decisions_with(**kwargs) -> list[bool]:
    injector = FaultInjector(FaultPlan(rules=(
        FaultRule(faults.ENGINE_SLOW, **kwargs),
    )))
    return [
        injector.check(faults.ENGINE_SLOW) is not None
        for _ in range(10)
    ]


class TestGuards:
    def test_destructive_sites_suppressed_outside_worker(self):
        injector = faults.install(FaultPlan(rules=(
            FaultRule(faults.WORKER_KILL),
            FaultRule(faults.WORKER_HANG),
        )))
        assert not faults.in_worker_context()
        # If the guard failed, maybe_kill would SIGKILL pytest itself.
        faults.maybe_kill(faults.WORKER_KILL)
        assert faults.sleep_site(faults.WORKER_HANG) == 0.0
        assert injector.fired() == 0
        described = injector.describe()
        assert described["suppressed"] == {
            faults.WORKER_KILL: 1, faults.WORKER_HANG: 1,
        }

    def test_no_injector_is_quiet(self):
        assert faults.active_injector() is None
        assert faults.fire(faults.WORKER_EXCEPTION) is None
        faults.maybe_raise(faults.WORKER_EXCEPTION)  # no-op

    def test_maybe_raise_fires(self):
        faults.install(FaultPlan(rules=(
            FaultRule(faults.WORKER_EXCEPTION),
        )))
        with pytest.raises(faults.InjectedFault) as info:
            faults.maybe_raise(faults.WORKER_EXCEPTION)
        assert info.value.site == faults.WORKER_EXCEPTION

    def test_auto_install_from_environment(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "seed=5;engine.slow:rate=0")
        injector = faults.auto_install()
        assert injector is faults.active_injector()
        assert injector.plan.seed == 5
        # Idempotent: a second call keeps the same injector.
        assert faults.auto_install() is injector

    def test_explicit_install_wins_over_environment(self, monkeypatch):
        explicit = faults.install(FaultPlan(seed=1))
        monkeypatch.setenv(faults.ENV_VAR, "seed=2;engine.slow")
        assert faults.auto_install() is explicit


class TestTextMutators:
    PAYLOAD = json.dumps(
        {"spec": {"batch": 128}, "result": {"fwd": 123.5}}
    )

    def _arm(self, site):
        faults.install(FaultPlan(rules=(FaultRule(site),)))

    def test_corrupt_changes_result_region_keeps_json(self):
        self._arm(faults.CACHE_READ_CORRUPT)
        mutated = faults.corrupt_text(
            faults.CACHE_READ_CORRUPT, self.PAYLOAD
        )
        assert mutated != self.PAYLOAD
        # Still parses — the corruption models silent bit rot, not a
        # torn write; only checksum verification can catch it.
        parsed = json.loads(mutated)
        assert parsed["result"] != {"fwd": 123.5}
        assert parsed["spec"] == {"batch": 128}  # anchor honoured

    def test_truncate_keeps_fraction(self):
        faults.install(FaultPlan(rules=(
            FaultRule(faults.CACHE_READ_TRUNCATE, arg=0.25),
        )))
        mutated = faults.truncate_text(
            faults.CACHE_READ_TRUNCATE, self.PAYLOAD
        )
        assert len(mutated) == int(len(self.PAYLOAD) * 0.25)

    def test_unarmed_site_passes_text_through(self):
        self._arm(faults.CACHE_READ_CORRUPT)
        assert faults.truncate_text(
            faults.CACHE_READ_TRUNCATE, self.PAYLOAD
        ) == self.PAYLOAD
