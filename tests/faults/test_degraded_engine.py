"""Graceful degradation: periodic-engine faults fall back, identically."""

import dataclasses

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.obs.metrics import default_registry
from repro.service import api, pool

from tests.faults.conftest import cheap_spec


@pytest.fixture(autouse=True)
def _cold_models():
    # The engine fault sites live behind the profile memo; a warm
    # model would serve the memo and never reach them.
    pool.clear_model_cache()
    yield
    pool.clear_model_cache()


class TestEngineDegradation:
    def test_periodic_failure_degrades_to_incremental(self):
        spec = cheap_spec(batch=32, engine="periodic")
        expected = api.submit(
            dataclasses.replace(spec, engine="incremental"), cache=None
        )
        assert expected.ok

        pool.clear_model_cache()
        faults.install(FaultPlan(rules=(
            FaultRule(faults.ENGINE_FAIL, max_fires=1),
        )))
        outcome = api.submit(spec, cache=None)
        assert outcome.ok
        assert outcome.degraded is True
        assert "InjectedFault" in outcome.degraded_reason
        # The equivalence contract holds through the fallback: the
        # degraded run is byte-identical to a clean incremental run.
        assert outcome.result.to_dict() == expected.result.to_dict()
        rendered = default_registry().render()
        assert 'jobs_degraded_total{from_engine="periodic"}' in rendered

    def test_incremental_failure_propagates(self):
        # engine.fail only fires on the periodic engine: there is
        # nothing sound to degrade the base engine to.
        spec = cheap_spec(batch=32, engine="incremental")
        faults.install(FaultPlan(rules=(
            FaultRule(faults.ENGINE_FAIL),
        )))
        outcome = api.submit(spec, cache=None)
        assert outcome.ok
        assert not outcome.degraded

    def test_engine_slow_injects_delay(self):
        faults.install(FaultPlan(rules=(
            FaultRule(faults.ENGINE_SLOW, delay_ms=1.0, max_fires=2),
        )))
        injector = faults.active_injector()
        outcome = api.submit(cheap_spec(batch=32), cache=None)
        assert outcome.ok
        assert injector.fired(faults.ENGINE_SLOW) == 2
