"""Server-level fault tolerance, up to the 64-job chaos acceptance run."""

import multiprocessing
import time

import pytest

from repro import faults
from repro.server import ServerClient, ServerConfig, create_server
from repro.service import api

from tests.faults.conftest import CHEAP, cheap_spec

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="hardened execution requires the fork start method",
)


@pytest.fixture()
def live_server():
    """Factory: start background servers, stop them all at teardown."""
    servers = []

    def start(**overrides):
        config = ServerConfig(**{"port": 0, **overrides})
        server = create_server(config)
        server.start_background()
        servers.append(server)
        return server, ServerClient(server.url, max_retries=0)

    yield start
    for server in servers:
        server.stop()


class TestDispatcherStop:
    def test_stop_detects_leaked_thread(self, live_server):
        # An injected stall wedges the dispatcher mid-execution; a
        # short-fused stop must report the leak instead of pretending
        # the thread joined.
        server, client = live_server(
            faults="seed=1;dispatcher.stall:rate=1,delay_ms=1500,max=1"
        )
        client.submit(dict(CHEAP, batch=16))
        stopped = server.dispatcher.stop(timeout=0.2)
        assert stopped is False
        assert server.dispatcher.stopped_clean is False
        assert "dispatcher_stop_leaked_total 1" in (
            server.metrics.render()
        )

    def test_clean_stop_reports_true(self, live_server):
        server, _ = live_server()
        assert server.dispatcher.stop() is True
        assert server.dispatcher.stopped_clean is True


class TestDeadlines:
    def test_queued_past_deadline_finishes_timed_out(self, live_server):
        server, client = live_server(
            default_deadline_ms=50,
            faults="seed=1;dispatcher.stall:rate=1,delay_ms=300,max=1",
        )
        [envelope] = client.submit(dict(CHEAP, batch=16))
        [final] = client.wait_for([envelope["id"]], timeout=30.0)
        assert final["status"] == "timed_out"
        assert final["failure"]["reason"] == "timeout"
        assert final["failure"]["timed_out"] is True
        assert "job_timeouts_total" in server.metrics.render()

    @needs_fork
    def test_deadline_enforced_mid_execution(self, live_server):
        # A worker wedged by an injected hang blows the job deadline;
        # the hardened pool kills it and the job terminates classified
        # instead of running forever.
        server, client = live_server(
            default_deadline_ms=400,
            job_timeout_seconds=30.0,
            job_max_retries=0,
            faults="seed=1;worker.hang:rate=1,delay_ms=60000",
        )
        [envelope] = client.submit(dict(CHEAP, batch=16))
        start = time.monotonic()
        [final] = client.wait_for([envelope["id"]], timeout=30.0)
        assert time.monotonic() - start < 20.0
        assert final["status"] == "timed_out"


@needs_fork
class TestChaosAcceptance:
    """The acceptance bar: a 64-job sweep through the live server with
    worker kills, cache corruption, and injected slowness completes
    every job byte-identical to a fault-free run — zero hangs, zero
    unhandled exceptions, every fault family visible on /metrics."""

    # worker.kill is checked once per child at index 0 (forked workers
    # inherit the parent's untouched counter), so its rate is
    # effectively all-or-nothing: rate=1,attempts=1 kills every first
    # attempt and every retry succeeds — the strongest determinstic
    # exercise of the respawn path.
    CHAOS = (
        "seed=1301;"
        "worker.kill:rate=1,attempts=1;"
        "cache.read.corrupt:rate=0.3,max=10;"
        "engine.slow:rate=0.2,delay_ms=2;"
        "dispatcher.stall:rate=1,delay_ms=10,max=2"
    )

    def test_64_job_sweep_survives_chaos(self, live_server, tmp_path):
        batches = [16 + 4 * i for i in range(64)]
        # Fault-free ground truth, computed before the plan is armed.
        expected = {}
        for batch in batches:
            outcome = api.submit(cheap_spec(batch=batch), cache=None)
            assert outcome.ok
            expected[batch] = outcome.result.to_dict()

        server, client = live_server(
            workers=4,
            queue_depth=128,
            job_timeout_seconds=60.0,
            cache_dir=str(tmp_path),
            cache_max_entries=0,  # force every lookup through disk
            faults=self.CHAOS,
        )
        specs = [dict(CHEAP, batch=b) for b in batches]

        for sweep in range(2):  # second pass exercises disk reads
            envelopes = client.submit(specs)
            finals = client.wait_for(
                [e["id"] for e in envelopes], timeout=180.0
            )
            for batch, final in zip(batches, finals):
                assert final["status"] == "done", (sweep, batch, final)
                assert final["result"] == expected[batch], (sweep, batch)

        # Zero hangs: nothing is left queued or running.
        health = client.healthz()
        assert health["jobs"]["queued"] == 0
        assert health["jobs"]["running"] == 0
        assert health["faults"]["fired"]  # the plan really fired

        metrics = client.metrics_text()
        assert "repro_faults_injected_total" in metrics
        # Kills were detected and recovered by the hardened pool.
        assert 'repro_faults_detected_total{kind="worker-death"}' in (
            metrics
        )
        assert "repro_jobs_retried_total" in metrics
        # Corrupted disk entries were refused and re-simulated.
        assert "repro_cache_checksum_failures_total" in metrics
