"""Quarantine TTL: poison-job blocks can expire and re-execute.

The default (no TTL) holds a tripped quarantine for the process
lifetime — the long-standing behaviour, pinned here as a regression
test. With ``quarantine_ttl_seconds`` set, a quarantined hash is
re-admitted once the TTL elapses: transient poison (a fault burst, a
since-fixed dependency) stops blacklisting a spec forever.
"""

import multiprocessing
import time

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.obs.metrics import default_registry
from repro.service import api, pool
from repro.service.config import ServiceConfig

from tests.faults.conftest import cheap_spec

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="hardened execution requires the fork start method",
)


def trip_quarantine(spec, ttl=None):
    """Kill the worker on every attempt until retries exhaust, which
    trips the quarantine; the caller uninstalls the plan to model
    since-fixed poison before probing expiry behaviour."""
    faults.install(FaultPlan.parse("seed=5;worker.kill:rate=1"))
    config = ServiceConfig(
        job_timeout_seconds=30.0,
        max_retries=2,
        quarantine_ttl_seconds=ttl,
    )
    [outcome] = api.submit_many([spec], cache=None, config=config)
    assert outcome.failure_reason == "quarantined"
    assert spec.content_hash() in pool.quarantined_hashes()
    return config


@needs_fork
class TestQuarantineTtl:
    def test_default_blocks_for_the_process_lifetime(self):
        # Regression: without a TTL, elapsed time never re-admits.
        spec = cheap_spec(batch=40)
        config = trip_quarantine(spec, ttl=None)
        time.sleep(0.25)
        [blocked] = api.submit_many([spec], cache=None, config=config)
        assert blocked.failure_reason == "quarantined"
        assert blocked.failure["attempts"] == 0
        rendered = default_registry().render()
        assert 'jobs_quarantined_total{event="blocked"}' in rendered
        assert 'jobs_quarantined_total{event="expired"}' not in rendered

    def test_ttl_expiry_readmits_and_reruns(self):
        spec = cheap_spec(batch=44)
        expected = api.submit(spec, cache=None)
        assert expected.ok
        config = trip_quarantine(spec, ttl=0.2)
        faults.uninstall()  # the poison was transient
        time.sleep(0.3)
        # Past the TTL the block lapses, the job executes again, and
        # the result is byte-identical to the fault-free run.
        [outcome] = api.submit_many([spec], cache=None, config=config)
        assert outcome.ok
        assert outcome.result.to_dict() == expected.result.to_dict()
        assert spec.content_hash() not in pool.quarantined_hashes()
        rendered = default_registry().render()
        assert 'jobs_quarantined_total{event="expired"}' in rendered

    def test_unexpired_ttl_still_blocks(self):
        spec = cheap_spec(batch=52)
        config = trip_quarantine(spec, ttl=60.0)
        [blocked] = api.submit_many([spec], cache=None, config=config)
        assert blocked.failure_reason == "quarantined"
        assert blocked.failure["attempts"] == 0

    def test_ttl_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ServiceConfig(quarantine_ttl_seconds=0)
        with pytest.raises(ConfigError):
            ServiceConfig(quarantine_ttl_seconds=-1.0)
