"""Hardened pool execution: kills, hangs, timeouts, quarantine."""

import multiprocessing
import time

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.obs.metrics import default_registry
from repro.service import api, pool
from repro.service.config import ServiceConfig

from tests.faults.conftest import cheap_spec

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="hardened execution requires the fork start method",
)

HARDENED = ServiceConfig(job_timeout_seconds=30.0)


@needs_fork
class TestIsolatedExecution:
    def test_fault_free_run_is_byte_identical_to_serial(self):
        spec = cheap_spec(batch=32)
        expected = api.submit(spec, cache=None)
        assert expected.ok
        [outcome] = api.submit_many(
            [spec], cache=None, config=HARDENED
        )
        assert outcome.ok
        assert outcome.execution_mode == "isolated"
        assert not outcome.retried
        assert outcome.result.to_dict() == expected.result.to_dict()

    def test_killed_worker_is_retried_and_result_identical(self):
        spec = cheap_spec(batch=48)
        expected = api.submit(spec, cache=None)
        # The worker-death satellite: attempt 0 is SIGKILLed mid-job
        # (rate=1), the parent detects the closed pipe, respawns, and
        # attempt 1 (past the attempts=1 bound) completes the job.
        faults.install(FaultPlan.parse(
            "seed=11;worker.kill:rate=1,attempts=1"
        ))
        [outcome] = api.submit_many(
            [spec], cache=None, config=HARDENED
        )
        assert outcome.ok
        assert outcome.retried
        assert outcome.failure is None
        assert outcome.result.to_dict() == expected.result.to_dict()
        rendered = default_registry().render()
        assert 'faults_detected_total{kind="worker-death"}' in rendered
        assert 'jobs_retried_total{reason="worker-death"}' in rendered

    def test_poison_job_is_quarantined_then_blocked(self):
        spec = cheap_spec(batch=64)
        faults.install(FaultPlan.parse("seed=3;worker.kill:rate=1"))
        config = ServiceConfig(job_timeout_seconds=30.0, max_retries=2)
        [outcome] = api.submit_many([spec], cache=None, config=config)
        assert outcome.status == "failed"
        assert outcome.failure_reason == "quarantined"
        assert outcome.failure["attempts"] == 3
        assert outcome.failure["quarantined"] is True
        assert spec.content_hash() in pool.quarantined_hashes()

        # Resubmission short-circuits without burning another worker.
        [blocked] = api.submit_many([spec], cache=None, config=config)
        assert blocked.failure_reason == "quarantined"
        assert blocked.failure["attempts"] == 0
        rendered = default_registry().render()
        assert 'jobs_quarantined_total{event="tripped"}' in rendered
        assert 'jobs_quarantined_total{event="blocked"}' in rendered

    def test_hung_worker_is_killed_at_timeout(self):
        spec = cheap_spec(batch=96)
        faults.install(FaultPlan.parse(
            "seed=2;worker.hang:rate=1,delay_ms=60000"
        ))
        config = ServiceConfig(job_timeout_seconds=0.5, max_retries=0)
        start = time.monotonic()
        [outcome] = api.submit_many([spec], cache=None, config=config)
        elapsed = time.monotonic() - start
        assert outcome.status == "failed"
        assert outcome.failure_reason == "timeout"
        assert outcome.failure["timed_out"] is True
        assert elapsed < 10.0  # killed, not waited out
        rendered = default_registry().render()
        assert 'faults_detected_total{kind="job-timeout"}' in rendered

    def test_expired_deadline_classified_without_executing(self):
        spec = cheap_spec(batch=112)
        [outcome] = api.submit_many(
            [spec],
            cache=None,
            config=HARDENED,
            deadlines=[time.monotonic() - 1.0],
        )
        assert outcome.status == "failed"
        assert outcome.failure_reason == "timeout"
        assert outcome.failure["attempts"] == 0
        assert "before execution" in outcome.failure["detail"]

    def test_parallel_pool_records_execution_mode(self):
        specs = [cheap_spec(batch=b) for b in (16, 24)]
        results = api.submit_many(specs, jobs=2, cache=None)
        assert all(r.ok for r in results)
        assert {r.execution_mode for r in results} == {"parallel"}


class TestSerialPaths:
    def test_serial_submit_records_execution_mode(self):
        outcome = api.submit(cheap_spec(batch=16), cache=None)
        assert outcome.ok
        assert outcome.execution_mode == "serial"

    def test_serial_fallback_is_recorded(self, monkeypatch):
        def refuse(method):
            raise ValueError(f"start method {method!r} unavailable")

        monkeypatch.setattr(
            pool.multiprocessing, "get_context", refuse
        )
        [outcome] = api.submit_many(
            [cheap_spec(batch=16)], cache=None, config=HARDENED
        )
        assert outcome.ok
        assert outcome.execution_mode == "serial"
        rendered = default_registry().render()
        assert 'pool_serial_fallback_total{requested="isolated"}' in (
            rendered
        )

    def test_worker_exception_is_an_error_not_retried(self):
        faults.install(FaultPlan(rules=(
            FaultRule(faults.WORKER_EXCEPTION, max_fires=1),
        )))
        [outcome] = api.submit_many([cheap_spec(batch=16)], cache=None)
        assert outcome.status == "error"
        assert "InjectedFault" in outcome.error
