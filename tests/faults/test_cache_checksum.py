"""Disk-cache integrity: checksums catch bit rot; misses re-simulate."""

import json

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.service.cache import ResultCache, result_checksum
from repro.system.design import DesignPoint
from repro.system.training import NetworkResult, PhaseTimes

from tests.faults.conftest import cheap_spec


def _fake_result(tag: float) -> NetworkResult:
    return NetworkResult(
        network="MLP1",
        batch=128,
        precision="8/32",
        optimizer="momentum_sgd",
        blocks=(),
        totals={DesignPoint.BASELINE: PhaseTimes(fwd=tag)},
        profiles={},
    )


def _flip_result_byte(path) -> None:
    """Flip one digit inside the entry's result region on disk."""
    text = path.read_text()
    anchor = text.find('"result"')
    assert anchor >= 0
    for i in range(anchor, len(text)):
        if text[i].isdigit():
            replacement = "9" if text[i] != "9" else "3"
            path.write_text(text[:i] + replacement + text[i + 1:])
            return
    raise AssertionError("no digit to flip in the result region")


class TestChecksum:
    def test_entries_carry_checksum(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        spec = cheap_spec()
        key = cache.put(spec, _fake_result(1.5))
        payload = json.loads((tmp_path / f"{key}.json").read_text())
        assert payload["checksum"] == result_checksum(payload["result"])

    def test_flipped_byte_is_a_miss_and_rewrite(self, tmp_path):
        spec = cheap_spec()
        writer = ResultCache(directory=tmp_path)
        key = writer.put(spec, _fake_result(1.5))
        _flip_result_byte(tmp_path / f"{key}.json")

        # A fresh instance (cold memory layer) must read from disk,
        # catch the checksum mismatch, and report a miss...
        reader = ResultCache(max_entries=0, directory=tmp_path)
        assert reader.get(spec) is None
        assert reader.stats()["checksum_failures"] == 1
        assert reader.stats()["misses"] == 1

        # ...after which the caller re-simulates and the fresh put
        # replaces the damaged file, making the entry servable again.
        reader.put(spec, _fake_result(1.5))
        roundtrip = reader.get(spec)
        assert roundtrip is not None
        assert roundtrip.totals[DesignPoint.BASELINE].fwd == 1.5

    def test_legacy_entry_without_checksum_accepted(self, tmp_path):
        spec = cheap_spec()
        cache = ResultCache(directory=tmp_path)
        key = cache.put(spec, _fake_result(2.5))
        path = tmp_path / f"{key}.json"
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload, sort_keys=True))

        reader = ResultCache(max_entries=0, directory=tmp_path)
        result = reader.get(spec)
        assert result is not None
        assert reader.stats()["checksum_failures"] == 0

    def test_truncated_file_is_a_miss(self, tmp_path):
        spec = cheap_spec()
        cache = ResultCache(directory=tmp_path)
        key = cache.put(spec, _fake_result(3.5))
        path = tmp_path / f"{key}.json"
        path.write_text(path.read_text()[: 40])
        reader = ResultCache(max_entries=0, directory=tmp_path)
        assert reader.get(spec) is None


class TestInjectedCacheFaults:
    def test_read_corruption_detected(self, tmp_path):
        spec = cheap_spec()
        cache = ResultCache(max_entries=0, directory=tmp_path)
        cache.put(spec, _fake_result(4.5))
        faults.install(FaultPlan(rules=(
            FaultRule(faults.CACHE_READ_CORRUPT, max_fires=1),
        )))
        assert cache.get(spec) is None  # corrupted read: refused
        assert cache.stats()["checksum_failures"] == 1
        assert cache.get(spec) is not None  # fault spent: clean again

    def test_write_corruption_caught_on_next_read(self, tmp_path):
        spec = cheap_spec()
        cache = ResultCache(max_entries=0, directory=tmp_path)
        faults.install(FaultPlan(rules=(
            FaultRule(faults.CACHE_WRITE_CORRUPT, max_fires=1),
        )))
        cache.put(spec, _fake_result(5.5))  # damaged on the way down
        assert cache.get(spec) is None
        assert cache.stats()["checksum_failures"] == 1
        # The recovery loop: re-simulate, rewrite (fault exhausted),
        # and the entry serves cleanly.
        cache.put(spec, _fake_result(5.5))
        assert cache.get(spec) is not None

    def test_read_truncation_is_a_miss(self, tmp_path):
        spec = cheap_spec()
        cache = ResultCache(max_entries=0, directory=tmp_path)
        cache.put(spec, _fake_result(6.5))
        faults.install(FaultPlan(rules=(
            FaultRule(faults.CACHE_READ_TRUNCATE, max_fires=1, arg=0.3),
        )))
        assert cache.get(spec) is None
        assert cache.get(spec) is not None
