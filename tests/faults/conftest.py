"""Shared fixtures for the fault-injection suite.

Fault plans, quarantine, and the default metrics registry are all
process-global state; every test here starts and ends with them clean.
The ``REPRO_FAULTS`` environment variable is cleared too, so these
tests stay deterministic even inside the chaos CI job (which arms a
plan for the rest of the suite).
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.obs.metrics import set_default_registry
from repro.obs.trace import disable_tracing
from repro.service import pool
from repro.service.spec import SimJobSpec

#: The cheapest full job: MLP1, two designs, narrow stripes.
CHEAP = dict(
    network="MLP1",
    columns_per_stripe=8,
    designs=("Baseline", "GradPIM-BD"),
)


def cheap_spec(**overrides) -> SimJobSpec:
    return SimJobSpec(**{**CHEAP, **overrides})


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.uninstall()
    pool.clear_quarantine()
    set_default_registry(None)
    disable_tracing()
    yield
    faults.uninstall()
    pool.clear_quarantine()
    set_default_registry(None)
    disable_tracing()
