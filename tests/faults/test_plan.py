"""FaultPlan / FaultRule parsing, validation, and round-trips."""

import pytest

from repro import faults
from repro.errors import ConfigError
from repro.faults import FaultPlan, FaultRule


class TestParse:
    def test_compact_spec(self):
        plan = FaultPlan.parse(
            "seed=42;worker.kill:rate=0.2,attempts=1;"
            "engine.slow:delay_ms=50;cache.read.corrupt"
        )
        assert plan.seed == 42
        assert plan.sites == (
            "worker.kill", "engine.slow", "cache.read.corrupt"
        )
        kill = plan.rule(faults.WORKER_KILL)
        assert kill.rate == pytest.approx(0.2)
        assert kill.max_attempt == 1
        slow = plan.rule(faults.ENGINE_SLOW)
        assert slow.delay_ms == pytest.approx(50.0)
        assert slow.delay_seconds == pytest.approx(0.05)
        # A bare site arms with defaults: always fire, no caps.
        bare = plan.rule(faults.CACHE_READ_CORRUPT)
        assert bare.rate == 1.0 and bare.max_fires is None

    def test_json_spec(self):
        plan = FaultPlan.parse(
            '{"seed": 7, "rules": [{"site": "worker.hang", '
            '"rate": 0.5, "delay_ms": 100, "max": 3}]}'
        )
        assert plan.seed == 7
        rule = plan.rule(faults.WORKER_HANG)
        assert rule.rate == pytest.approx(0.5)
        assert rule.max_fires == 3

    def test_round_trip_through_spec(self):
        plan = FaultPlan(
            seed=9,
            rules=(
                FaultRule(faults.WORKER_KILL, rate=0.25, max_attempt=1),
                FaultRule(faults.ENGINE_SLOW, delay_ms=10.0, max_fires=4),
                FaultRule(faults.CACHE_READ_TRUNCATE, arg=0.75),
            ),
        )
        assert FaultPlan.parse(plan.to_spec()) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_default_delays(self):
        assert FaultRule(faults.WORKER_HANG).delay_seconds == 300.0
        assert FaultRule(faults.WORKER_KILL).delay_seconds == 0.0


class TestValidation:
    @pytest.mark.parametrize("spec", [
        "",
        "worker.explode",
        "worker.kill:rate=2.0",
        "worker.kill:rate",
        "worker.kill:attempts=0",
        "worker.kill:bogus=1",
        "seed=banana;worker.kill",
        '{"seed": 0, "bogus": []}',
        "{not json",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ConfigError):
            FaultPlan.parse(spec)

    def test_duplicate_site_rejected(self):
        with pytest.raises(ConfigError, match="armed twice"):
            FaultPlan.parse("worker.kill;worker.kill:rate=0.5")

    def test_rule_must_name_known_site(self):
        with pytest.raises(ConfigError, match="unknown fault site"):
            FaultRule(site="nope")
