"""Shared fixtures: small geometries and cached cycle-sim profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.geometry import DeviceGeometry
from repro.dram.timing import DDR4_2133
from repro.optim.sgd import MomentumSGD
from repro.system.update_model import UpdatePhaseModel


@pytest.fixture(scope="session")
def timing():
    """The paper's DDR4-2133 grade."""
    return DDR4_2133


@pytest.fixture(scope="session")
def geometry():
    """The paper's 4-rank, 4x4-bank geometry."""
    return DeviceGeometry()


@pytest.fixture(scope="session")
def small_geometry():
    """A reduced geometry (2 ranks, fewer rows) for cheap cycle sims."""
    return DeviceGeometry(ranks=2, rows=256, dimms=2)


@pytest.fixture()
def rng():
    """Deterministic random generator for functional tests."""
    return np.random.default_rng(20210215)  # the paper's arXiv date


@pytest.fixture(scope="session")
def momentum_optimizer():
    """The paper's default update algorithm."""
    return MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4)


@pytest.fixture(scope="session")
def update_model(timing, geometry):
    """A session-cached update-phase model with a small sample window."""
    return UpdatePhaseModel(
        timing=timing, geometry=geometry, columns_per_stripe=8
    )
