"""Update-phase-model tests: the Fig. 11 orderings from cycle sims.

These use the session-cached :class:`UpdatePhaseModel` (8 columns per
stripe) so the full design sweep costs one simulation each.
"""

import pytest

from repro.optim.precision import PRECISION_8_32, PRECISION_FULL
from repro.system.design import DesignPoint


@pytest.fixture(scope="module")
def profiles(update_model, momentum_optimizer):
    return update_model.profiles(momentum_optimizer, PRECISION_8_32)


class TestOrderings:
    """The qualitative results the whole paper rests on."""

    def test_every_pim_design_beats_baseline(self, profiles):
        base = profiles[DesignPoint.BASELINE].seconds_per_param
        for d in (
            DesignPoint.GRADPIM_DIRECT,
            DesignPoint.TENSORDIMM,
            DesignPoint.GRADPIM_BUFFERED,
            DesignPoint.AOS,
            DesignPoint.AOS_PB,
        ):
            assert profiles[d].seconds_per_param < base, d

    def test_buffered_beats_direct(self, profiles):
        assert (
            profiles[DesignPoint.GRADPIM_BUFFERED].seconds_per_param
            < profiles[DesignPoint.GRADPIM_DIRECT].seconds_per_param
        )

    def test_direct_update_speedup_in_paper_range(self, profiles):
        """Paper: ~2.25x; accept the right neighbourhood."""
        speedup = (
            profiles[DesignPoint.BASELINE].seconds_per_param
            / profiles[DesignPoint.GRADPIM_DIRECT].seconds_per_param
        )
        assert 1.4 <= speedup <= 3.0

    def test_buffered_update_speedup_in_paper_range(self, profiles):
        """Paper: ~8.23x; accept the right neighbourhood."""
        speedup = (
            profiles[DesignPoint.BASELINE].seconds_per_param
            / profiles[DesignPoint.GRADPIM_BUFFERED].seconds_per_param
        )
        assert 4.5 <= speedup <= 10.0

    def test_buffered_internal_bandwidth_multiplier(self, profiles):
        """Paper Fig. 11: GradPIM-Buffered ~4x GradPIM-Direct."""
        ratio = (
            profiles[DesignPoint.GRADPIM_BUFFERED].internal_bandwidth
            / profiles[DesignPoint.GRADPIM_DIRECT].internal_bandwidth
        )
        assert 2.5 <= ratio <= 4.5

    def test_direct_is_command_bus_limited(self, profiles):
        """Paper: the command bus saturates for GradPIM-Direct."""
        util = profiles[
            DesignPoint.GRADPIM_DIRECT
        ].command_bus_utilization
        assert util > 0.6
        assert util <= 1.0

    def test_buffered_exceeds_single_bus(self, profiles):
        assert profiles[
            DesignPoint.GRADPIM_BUFFERED
        ].command_bus_utilization > 1.0

    def test_baseline_near_peak_external(self, profiles, timing):
        """Paper: ~15 of 17.1 GB/s."""
        bw = profiles[DesignPoint.BASELINE].external_bandwidth
        assert 0.75 * timing.peak_offchip_bandwidth() <= bw

    def test_internal_bandwidth_below_peak(
        self, profiles, timing, geometry
    ):
        peak = timing.peak_internal_bandwidth(
            geometry.bankgroups, geometry.ranks
        )
        for p in profiles.values():
            assert p.internal_bandwidth <= peak

    def test_pim_designs_have_zero_offchip_update_traffic(
        self, profiles
    ):
        for d in (
            DesignPoint.GRADPIM_DIRECT,
            DesignPoint.GRADPIM_BUFFERED,
            DesignPoint.TENSORDIMM,  # stays behind the buffer
            DesignPoint.AOS,
        ):
            assert profiles[d].offchip_bytes_per_param == 0.0

    def test_baseline_offchip_matches_three_phase(self, profiles):
        assert profiles[
            DesignPoint.BASELINE
        ].offchip_bytes_per_param == pytest.approx(30.0, rel=0.02)


class TestProfileMechanics:
    def test_profiles_are_cached(self, update_model, momentum_optimizer):
        a = update_model.profile(
            DesignPoint.BASELINE, momentum_optimizer, PRECISION_8_32
        )
        b = update_model.profile(
            DesignPoint.BASELINE, momentum_optimizer, PRECISION_8_32
        )
        assert a is b

    def test_refresh_derate_small_but_positive(self, update_model):
        assert 1.0 < update_model.refresh_derate < 1.10

    def test_full_precision_update_is_leaner(
        self, update_model, momentum_optimizer
    ):
        mixed = update_model.profile(
            DesignPoint.GRADPIM_BUFFERED, momentum_optimizer,
            PRECISION_8_32,
        )
        full = update_model.profile(
            DesignPoint.GRADPIM_BUFFERED, momentum_optimizer,
            PRECISION_FULL,
        )
        # Full precision skips dequantize/quantize commands per param
        # but each parameter occupies 4x the column space: per-param
        # internal accesses stay comparable; commands shrink.
        assert full.quant_ops_per_param == 0.0
        assert mixed.quant_ops_per_param > 0.0

    def test_update_seconds_scales_linearly(self, profiles):
        p = profiles[DesignPoint.GRADPIM_BUFFERED]
        assert p.update_seconds(2e6) == pytest.approx(
            2 * p.update_seconds(1e6)
        )
