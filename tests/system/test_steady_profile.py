"""Profile-level steady-state extrapolation == full simulation.

``UpdatePhaseModel(engine="periodic")`` promises *byte-identical*
``UpdateProfile`` objects: every integer statistic extended exactly and
every derived float computed from the same integers by the same
expressions. These tests pin that contract across the design x
optimizer x precision x sample-width grid, the fallback behaviour, and
the refresh-derate guard satellite.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.timing import DDR4_2133, HBM_LIKE
from repro.errors import ConfigError
from repro.optim.precision import PRECISIONS
from repro.optim.registry import build_optimizer
from repro.system.design import DesignPoint
from repro.system.update_model import UpdatePhaseModel

MOMENTUM = {"eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4}


def _models(columns, **kwargs):
    inc = UpdatePhaseModel(
        columns_per_stripe=columns, engine="incremental", **kwargs
    )
    per = UpdatePhaseModel(
        columns_per_stripe=columns, engine="periodic", **kwargs
    )
    return inc, per


class TestProfileIdentity:
    @pytest.mark.parametrize("design", list(DesignPoint))
    @pytest.mark.parametrize("columns", [32, 64])
    def test_momentum_identity_per_design(self, design, columns):
        inc, per = _models(columns)
        optimizer = build_optimizer("momentum_sgd", MOMENTUM)
        assert inc.profile(design, optimizer) == per.profile(
            design, optimizer
        )

    @pytest.mark.parametrize(
        "optimizer_name", ["sgd", "momentum_sgd", "adagrad"]
    )
    @pytest.mark.parametrize("precision", ["8/32", "16/32", "32/32"])
    def test_identity_per_workload(self, optimizer_name, precision):
        inc, per = _models(48, extended_alu=True)
        optimizer = build_optimizer(optimizer_name)
        for design in (
            DesignPoint.GRADPIM_BUFFERED,
            DesignPoint.AOS,
        ):
            assert inc.profile(
                design, optimizer, PRECISIONS[precision]
            ) == per.profile(design, optimizer, PRECISIONS[precision])

    def test_fast_path_engages_at_wide_samples(self):
        _, per = _models(128)
        optimizer = build_optimizer("momentum_sgd", MOMENTUM)
        per.profile(DesignPoint.GRADPIM_BUFFERED, optimizer)
        assert per.periodic_report["fast_path"] == 1
        assert per.periodic_report["fallback"] == 0

    def test_narrow_samples_fall_back(self):
        """A sample narrower than any warm rung has nothing to
        extrapolate; the model must simulate it fully — and still
        match."""
        inc, per = _models(8)
        optimizer = build_optimizer("momentum_sgd", MOMENTUM)
        for design in DesignPoint:
            assert inc.profile(design, optimizer) == per.profile(
                design, optimizer
            )
        assert per.periodic_report["fast_path"] == 0

    def test_pinned_warm_width(self):
        inc, per_auto = _models(96)
        per_pinned = UpdatePhaseModel(
            columns_per_stripe=96,
            engine="periodic",
            periodic_warm_columns=36,
        )
        optimizer = build_optimizer("momentum_sgd", MOMENTUM)
        expected = inc.profile(DesignPoint.GRADPIM_BUFFERED, optimizer)
        assert expected == per_auto.profile(
            DesignPoint.GRADPIM_BUFFERED, optimizer
        )
        assert expected == per_pinned.profile(
            DesignPoint.GRADPIM_BUFFERED, optimizer
        )

    def test_multi_channel_serial_path_identity(self):
        geometry = dataclasses.replace(
            UpdatePhaseModel().geometry, channels=4
        )
        inc, per = _models(64, geometry=geometry, timing=HBM_LIKE)
        optimizer = build_optimizer("momentum_sgd", MOMENTUM)
        for design in (
            DesignPoint.BASELINE, DesignPoint.GRADPIM_BUFFERED,
        ):
            assert inc.profile(design, optimizer) == per.profile(
                design, optimizer
            )

    @pytest.mark.parametrize(
        "design", [DesignPoint.AOS, DesignPoint.AOS_PB]
    )
    @pytest.mark.parametrize("columns", [30, 126])
    def test_aos_non_ratio_multiple_widths(self, design, columns):
        """Regression: AoS kernels build exactly the requested width
        (no packing rounding) — extrapolation must profile the same
        kernel full simulation runs, not a ratio-rounded one."""
        inc, per = _models(columns)
        optimizer = build_optimizer("momentum_sgd", MOMENTUM)
        assert inc.profile(design, optimizer) == per.profile(
            design, optimizer
        )

    @settings(max_examples=8, deadline=None)
    @given(
        design=st.sampled_from(list(DesignPoint)),
        columns=st.sampled_from([16, 28, 30, 44, 60, 96, 126, 128]),
        window=st.sampled_from([8, 16]),
        precision=st.sampled_from(["8/32", "32/32"]),
    )
    def test_identity_hypothesis(self, design, columns, window,
                                 precision):
        inc, per = _models(columns, window=window)
        optimizer = build_optimizer("momentum_sgd", MOMENTUM)
        assert inc.profile(
            design, optimizer, PRECISIONS[precision]
        ) == per.profile(design, optimizer, PRECISIONS[precision])


class TestRefreshDerateGuard:
    def test_degenerate_refresh_raises(self):
        bad = dataclasses.replace(
            DDR4_2133, name="degenerate", tRFC=DDR4_2133.tREFI
        )
        model = UpdatePhaseModel(timing=bad, columns_per_stripe=8)
        with pytest.raises(ConfigError, match="tREFI"):
            _ = model.refresh_derate
        optimizer = build_optimizer("momentum_sgd", MOMENTUM)
        with pytest.raises(ConfigError, match="tREFI"):
            model.profile(DesignPoint.GRADPIM_BUFFERED, optimizer)

    def test_negative_derate_also_rejected(self):
        bad = dataclasses.replace(
            DDR4_2133, name="degenerate2", tRFC=DDR4_2133.tREFI + 100
        )
        model = UpdatePhaseModel(timing=bad)
        with pytest.raises(ConfigError, match="degenerate refresh"):
            _ = model.refresh_derate

    def test_healthy_timing_unchanged(self):
        model = UpdatePhaseModel()
        t = DDR4_2133
        assert model.refresh_derate == t.tREFI / (t.tREFI - t.tRFC)
