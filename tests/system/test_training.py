"""Training-simulator tests: Fig. 9 structure and orderings."""

import pytest

from repro.errors import ConfigError
from repro.models.zoo import build_network
from repro.system.design import DesignPoint, DESIGN_ORDER
from repro.system.training import PhaseTimes, TrainingSimulator


@pytest.fixture(scope="module")
def simulator(update_model, momentum_optimizer):
    return TrainingSimulator(
        optimizer=momentum_optimizer, update_model=update_model
    )


@pytest.fixture(scope="module")
def resnet_result(simulator):
    return simulator.simulate("ResNet18")


class TestPhaseTimes:
    def test_totals(self):
        t = PhaseTimes(fwd=1, bact=2, bwgt=3, update=4)
        assert t.fwd_bwd == 6
        assert t.total == 10

    def test_addition(self):
        t = PhaseTimes(1, 1, 1, 1) + PhaseTimes(2, 2, 2, 2)
        assert t.total == 12


class TestResNetResult:
    def test_all_designs_present(self, resnet_result):
        assert set(resnet_result.totals) == set(DESIGN_ORDER)

    def test_blocks_match_network(self, resnet_result):
        labels = [b.label for b in resnet_result.blocks]
        assert labels == [
            "Block0", "Block1", "Block2", "Block3", "Block4", "FC",
        ]

    def test_baseline_speedup_is_one(self, resnet_result):
        assert resnet_result.overall_speedup(
            DesignPoint.BASELINE
        ) == pytest.approx(1.0)

    def test_overall_speedups_in_paper_neighbourhood(
        self, resnet_result
    ):
        """ResNet-18: GP-DR ~1.4x, GP-BD ~2x in Fig. 9."""
        dr = resnet_result.overall_speedup(DesignPoint.GRADPIM_DIRECT)
        bd = resnet_result.overall_speedup(DesignPoint.GRADPIM_BUFFERED)
        assert 1.15 <= dr <= 1.7
        assert 1.5 <= bd <= 2.6
        assert bd > dr

    def test_fwd_bwd_same_across_non_aos_designs(self, resnet_result):
        base = resnet_result.totals[DesignPoint.BASELINE].fwd_bwd
        for d in (
            DesignPoint.GRADPIM_DIRECT,
            DesignPoint.TENSORDIMM,
            DesignPoint.GRADPIM_BUFFERED,
        ):
            assert resnet_result.totals[d].fwd_bwd == pytest.approx(
                base
            )

    def test_aos_pays_fwd_bwd_penalty(self, resnet_result):
        base = resnet_result.totals[DesignPoint.BASELINE].fwd_bwd
        aos = resnet_result.totals[DesignPoint.AOS].fwd_bwd
        assert aos > base * 1.1

    def test_aos_diminishes_overall_benefit(self, resnet_result):
        """§VI-B: 'most of the benefit from using GradPIM is
        diminished'."""
        assert resnet_result.overall_speedup(
            DesignPoint.AOS
        ) < resnet_result.overall_speedup(
            DesignPoint.GRADPIM_BUFFERED
        )

    def test_normalized_blocks_max_is_one_for_baseline(
        self, resnet_result
    ):
        norm = resnet_result.normalized_blocks()
        slowest = max(
            per_design[DesignPoint.BASELINE]
            for per_design in norm.values()
        )
        assert slowest == pytest.approx(1.0)

    def test_normalized_totals_baseline_is_one(self, resnet_result):
        assert resnet_result.normalized_totals()[
            DesignPoint.BASELINE
        ] == pytest.approx(1.0)

    def test_update_fraction_high_for_mixed_precision(
        self, resnet_result
    ):
        """§II: the update phase dominates the baseline step."""
        assert resnet_result.update_fraction(
            DesignPoint.BASELINE
        ) > 0.35


class TestAcrossNetworks:
    def test_weight_heavy_networks_gain_more(self, simulator):
        """MLP (weight-heavy) must gain far more than MobileNet
        (activation-heavy) — the Fig. 9/13 story."""
        mlp = simulator.simulate("MLP1")
        mobilenet = simulator.simulate("MobileNet")
        d = DesignPoint.GRADPIM_BUFFERED
        assert mlp.overall_speedup(d) > 2 * mobilenet.overall_speedup(d)

    def test_layer_speedups_structure(self, simulator):
        points = simulator.layer_speedups("MLP1")
        assert len(points) == 4
        for name, ratio, speedup in points:
            assert ratio > 0
            assert speedup >= 0.99

    def test_layer_speedup_correlates_with_ratio(self, simulator):
        points = simulator.layer_speedups("ResNet18")
        lo = min(points, key=lambda p: p[1])
        hi = max(points, key=lambda p: p[1])
        assert hi[2] > lo[2]

    def test_smaller_batch_raises_speedup(
        self, momentum_optimizer, update_model
    ):
        sim = TrainingSimulator(
            optimizer=momentum_optimizer,
            update_model=update_model,
            designs=(
                DesignPoint.BASELINE, DesignPoint.GRADPIM_BUFFERED,
            ),
        )
        d = DesignPoint.GRADPIM_BUFFERED
        small = sim.simulate(
            build_network("ResNet18", batch=16)
        ).overall_speedup(d)
        large = sim.simulate(
            build_network("ResNet18", batch=64)
        ).overall_speedup(d)
        assert small > large


class TestValidation:
    def test_design_set_must_include_baseline(
        self, momentum_optimizer, update_model
    ):
        with pytest.raises(ConfigError):
            TrainingSimulator(
                optimizer=momentum_optimizer,
                update_model=update_model,
                designs=(DesignPoint.GRADPIM_BUFFERED,),
            )
