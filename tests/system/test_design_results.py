"""Design-point configuration and result-formatting tests."""

import pytest

from repro.dram.geometry import DeviceGeometry
from repro.system.design import (
    DESIGN_ORDER,
    DESIGNS,
    DesignPoint,
    UPDATE_AOS_KERNEL,
    UPDATE_BASELINE_STREAM,
    UPDATE_NMP_STREAM,
    UPDATE_PIM_KERNEL,
)
from repro.system.results import format_table, geomean_speedup

GEOM = DeviceGeometry()


class TestDesignConfigs:
    def test_all_six_designs(self):
        assert len(DESIGN_ORDER) == 6
        assert set(DESIGN_ORDER) == set(DESIGNS)

    def test_baseline_uses_offchip_bus(self):
        cfg = DESIGNS[DesignPoint.BASELINE]
        assert cfg.update_kind == UPDATE_BASELINE_STREAM
        assert cfg.update_uses_offchip_bus

    def test_direct_single_command_port(self):
        cfg = DESIGNS[DesignPoint.GRADPIM_DIRECT]
        assert cfg.update_kind == UPDATE_PIM_KERNEL
        assert cfg.issue_model(GEOM).n_ports == 1

    def test_buffered_port_per_rank(self):
        cfg = DESIGNS[DesignPoint.GRADPIM_BUFFERED]
        assert cfg.issue_model(GEOM).n_ports == GEOM.ranks

    def test_tensordimm_port_per_dimm(self):
        cfg = DESIGNS[DesignPoint.TENSORDIMM]
        assert cfg.update_kind == UPDATE_NMP_STREAM
        assert cfg.issue_model(GEOM).n_ports == GEOM.dimms
        assert cfg.data_bus_scope == "dimm"

    def test_aos_designs_pay_weight_penalty(self):
        assert DESIGNS[DesignPoint.AOS].aos_weight_penalty == 4.0
        assert DESIGNS[DesignPoint.AOS_PB].aos_weight_penalty == 4.0
        assert DESIGNS[DesignPoint.AOS].update_kind == UPDATE_AOS_KERNEL

    def test_aos_pb_is_per_bank(self):
        assert DESIGNS[DesignPoint.AOS_PB].per_bank_pim
        assert not DESIGNS[DesignPoint.AOS].per_bank_pim

    def test_labels_match_paper(self):
        assert DesignPoint.BASELINE.value == "Baseline"
        assert DesignPoint.GRADPIM_BUFFERED.value == "GradPIM-BD"


class TestFormatting:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1.0], ["long-name", 0.123]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(l) == len(lines[0]) for l in lines[1:2])

    def test_format_table_number_styles(self):
        table = format_table(["x"], [[1234.0], [12.345], [0.001234], [0]])
        assert "1234" in table
        assert "12.35" in table or "12.34" in table

    def test_geomean_speedup(self):
        assert geomean_speedup({"a": 2.0, "b": 8.0}) == pytest.approx(
            4.0
        )
