"""Distributed-training tests: Fig. 14's claims."""

import pytest

from repro.errors import ConfigError
from repro.system.design import DesignPoint
from repro.system.distributed import DistributedModel
from repro.system.training import TrainingSimulator


@pytest.fixture(scope="module")
def model(update_model, momentum_optimizer):
    simulator = TrainingSimulator(
        optimizer=momentum_optimizer,
        update_model=update_model,
        designs=(DesignPoint.BASELINE, DesignPoint.GRADPIM_BUFFERED),
    )
    return DistributedModel(simulator, nodes=4)


@pytest.fixture(scope="module")
def resnet(model):
    return model.simulate("ResNet18")


def test_gradpim_wins_distributed(resnet):
    assert resnet.speedup > 1.3


def test_update_does_not_shrink_with_nodes(
    model, update_model, momentum_optimizer
):
    """§VI-E: the update phase is the sequential portion — per-node
    update time is the same as single-node."""
    single = TrainingSimulator(
        optimizer=momentum_optimizer,
        update_model=update_model,
        designs=(DesignPoint.BASELINE, DesignPoint.GRADPIM_BUFFERED),
    ).simulate("ResNet18")
    distributed = model.simulate("ResNet18")
    assert distributed.baseline.update == pytest.approx(
        single.totals[DesignPoint.BASELINE].update, rel=0.01
    )


def test_fwd_bwd_shrinks_with_nodes(
    model, update_model, momentum_optimizer
):
    single = TrainingSimulator(
        optimizer=momentum_optimizer,
        update_model=update_model,
        designs=(DesignPoint.BASELINE, DesignPoint.GRADPIM_BUFFERED),
    ).simulate("ResNet18")
    distributed = model.simulate("ResNet18")
    assert distributed.baseline.fwd_bwd < (
        0.5 * single.totals[DesignPoint.BASELINE].fwd_bwd
    )


def test_distributed_speedup_exceeds_single_node(
    model, update_model, momentum_optimizer
):
    """§VI-E: 'GradPIM shows much better scalability' — the speedup at
    4 nodes beats the single-node speedup."""
    single = TrainingSimulator(
        optimizer=momentum_optimizer,
        update_model=update_model,
        designs=(DesignPoint.BASELINE, DesignPoint.GRADPIM_BUFFERED),
    ).simulate("ResNet18")
    distributed = model.simulate("ResNet18")
    assert distributed.speedup > single.overall_speedup(
        DesignPoint.GRADPIM_BUFFERED
    )


def test_pim_accumulate_faster_than_baseline(resnet):
    assert resnet.gradpim.comm < resnet.baseline.comm


def test_node_times_structure(resnet):
    assert resnet.nodes == 4
    assert resnet.baseline.total == pytest.approx(
        resnet.baseline.comm
        + resnet.baseline.fwd_bwd
        + resnet.baseline.update
    )


def test_rejects_single_node(update_model, momentum_optimizer):
    simulator = TrainingSimulator(
        optimizer=momentum_optimizer, update_model=update_model
    )
    with pytest.raises(ConfigError):
        DistributedModel(simulator, nodes=1)
