"""Energy-accounting tests: Fig. 10's qualitative claims."""

import pytest

from repro.models.zoo import build_network
from repro.system.design import DesignPoint, DESIGN_ORDER
from repro.system.energy import EnergyAccountant
from repro.system.training import TrainingSimulator


@pytest.fixture(scope="module")
def energies(update_model, momentum_optimizer):
    simulator = TrainingSimulator(
        optimizer=momentum_optimizer, update_model=update_model
    )
    network = build_network("ResNet18")
    result = simulator.simulate(network)
    accountant = EnergyAccountant()
    return {
        d: accountant.step_energy(
            network, d, result.profiles[d], result.totals[d]
        )
        for d in DESIGN_ORDER
    }


def test_all_components_nonnegative(energies):
    for e in energies.values():
        assert e.act >= 0 and e.rd >= 0 and e.wr >= 0
        assert e.pim >= 0 and e.background >= 0


def test_gradpim_saves_energy(energies):
    """Fig. 10: the PIM designs consume less memory energy."""
    base = energies[DesignPoint.BASELINE].total
    for d in (
        DesignPoint.GRADPIM_DIRECT,
        DesignPoint.GRADPIM_BUFFERED,
    ):
        assert energies[d].total < base


def test_act_energy_roughly_constant(energies):
    """Fig. 10: 'energy consumption of row activation is almost the
    same across all architectures'."""
    acts = [e.act for e in energies.values()]
    assert max(acts) < 1.5 * min(acts)


def test_savings_come_from_rd_wr(energies):
    """Fig. 10: 'most of the energy reduction comes from the reduced
    amount of read/write'."""
    base = energies[DesignPoint.BASELINE]
    bd = energies[DesignPoint.GRADPIM_BUFFERED]
    rw_saving = (base.rd + base.wr) - (bd.rd + bd.wr)
    total_saving = base.total - bd.total
    assert rw_saving > 0.6 * total_saving


def test_pim_component_only_on_pim_designs(energies):
    assert energies[DesignPoint.BASELINE].pim == 0.0
    assert energies[DesignPoint.GRADPIM_BUFFERED].pim > 0.0


def test_pim_component_is_small(energies):
    """The Table III logic is micro-watts: a sliver of the total."""
    bd = energies[DesignPoint.GRADPIM_BUFFERED]
    assert bd.pim < 0.35 * bd.total


def test_aos_spends_more_rd_wr_than_gradpim(energies):
    """Fig. 10: AoS's Fwd/Bwd inflation shows up as RD/WR energy."""
    aos = energies[DesignPoint.AOS]
    bd = energies[DesignPoint.GRADPIM_BUFFERED]
    assert aos.rd + aos.wr > bd.rd + bd.wr


def test_tensordimm_between_baseline_and_gradpim(energies):
    base = energies[DesignPoint.BASELINE].total
    td = energies[DesignPoint.TENSORDIMM].total
    bd = energies[DesignPoint.GRADPIM_BUFFERED].total
    assert bd < td < base
