"""NPU-model tests: config, MAC timing, im2col algebra, roofline."""

import pytest

from repro.errors import ConfigError
from repro.npu.config import DEFAULT_NPU, NPUConfig
from repro.npu.dataflow import phase_time_seconds
from repro.npu.engine import NPUEngine
from repro.npu.im2col import (
    conv_gemm_shapes,
    conv_output_hw,
    linear_gemm_shapes,
)
from repro.npu.mac import GemmShape, gemm_cycles
from repro.models.layers import conv_layer, pool_layer


class TestConfig:
    def test_default_is_the_paper_npu(self):
        assert DEFAULT_NPU.array_rows == 256
        assert DEFAULT_NPU.array_cols == 256
        assert DEFAULT_NPU.clock_hz == 1e9
        assert DEFAULT_NPU.macs_per_cycle == 65536

    def test_peak_throughput(self):
        assert DEFAULT_NPU.peak_macs_per_second == pytest.approx(
            65.536e12
        )

    def test_with_array(self):
        small = DEFAULT_NPU.with_array(64, 64)
        assert small.macs_per_cycle == 4096
        assert DEFAULT_NPU.array_rows == 256  # original untouched

    def test_ops_per_byte_scales_with_array(self):
        big = DEFAULT_NPU.with_array(512, 512)
        assert big.ops_per_byte(17e9) > DEFAULT_NPU.ops_per_byte(17e9)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            NPUConfig(array_rows=0)
        with pytest.raises(ConfigError):
            NPUConfig(stream_efficiency=1.5)
        with pytest.raises(ConfigError):
            DEFAULT_NPU.ops_per_byte(0.0)


class TestGemmCycles:
    def test_single_block(self):
        shape = GemmShape(256, 256, 256)
        cycles = gemm_cycles(shape, DEFAULT_NPU)
        # One block pass: 256 streaming cycles plus fill/drain.
        assert 256 <= cycles <= 300

    def test_blocks_scale_linearly(self):
        one = gemm_cycles(GemmShape(256, 256, 256), DEFAULT_NPU)
        four = gemm_cycles(GemmShape(512, 256, 512), DEFAULT_NPU)
        assert four == 4 * one

    def test_ceil_rounding_wastes_small_gemms(self):
        """A 300-wide output on a 512-wide array pays the full pass —
        the Fig. 12a large-array rolloff."""
        big = DEFAULT_NPU.with_array(512, 512)
        small_work = gemm_cycles(GemmShape(300, 300, 300), big)
        full_work = gemm_cycles(GemmShape(512, 512, 512), big)
        assert small_work == full_work

    def test_larger_array_fewer_cycles_on_big_gemm(self):
        shape = GemmShape(2048, 2048, 2048)
        small = gemm_cycles(shape, DEFAULT_NPU.with_array(64, 64))
        large = gemm_cycles(shape, DEFAULT_NPU.with_array(512, 512))
        assert large < small

    def test_rejects_empty_gemm(self):
        with pytest.raises(ConfigError):
            GemmShape(0, 1, 1)


class TestIm2col:
    def test_output_size_same_padding(self):
        assert conv_output_hw(56, 56, 3, 1, 1) == (56, 56)

    def test_output_size_strided(self):
        assert conv_output_hw(224, 224, 7, 2, 3) == (112, 112)

    def test_rejects_empty_output(self):
        with pytest.raises(ConfigError):
            conv_output_hw(2, 2, 5, 1, 0)

    def test_forward_macs_match_formula(self):
        g = conv_gemm_shapes(64, 128, 56, 56, 3, 1, 1, batch=32)
        expected = 128 * 64 * 9 * 56 * 56 * 32
        assert g.forward.macs == expected

    def test_backward_macs_match_forward(self):
        g = conv_gemm_shapes(64, 128, 56, 56, 3, 1, 1, batch=32)
        assert g.backward_act.macs == g.forward.macs
        assert g.backward_wgt.macs == g.forward.macs

    def test_depthwise_groups(self):
        g = conv_gemm_shapes(
            32, 32, 112, 112, 3, 1, 1, batch=1, groups=32
        )
        assert g.forward.macs == 32 * 9 * 112 * 112

    def test_group_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            conv_gemm_shapes(30, 64, 56, 56, 3, 1, 1, 32, groups=4)

    def test_linear_shapes(self):
        g = linear_gemm_shapes(512, 1000, 32)
        assert g.forward.macs == 512 * 1000 * 32


class TestRoofline:
    def test_compute_bound(self):
        t = phase_time_seconds(1e6, 0.0, DEFAULT_NPU, 17e9)
        assert t == pytest.approx(1e-3)

    def test_memory_bound(self):
        t = phase_time_seconds(0.0, 17e9 * 0.88, DEFAULT_NPU, 17e9)
        assert t == pytest.approx(1.0)

    def test_max_of_both(self):
        compute = phase_time_seconds(2e6, 0.0, DEFAULT_NPU, 17e9)
        memory = phase_time_seconds(0.0, 1e6, DEFAULT_NPU, 17e9)
        both = phase_time_seconds(2e6, 1e6, DEFAULT_NPU, 17e9)
        assert both == max(compute, memory)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            phase_time_seconds(-1, 0, DEFAULT_NPU, 17e9)
        with pytest.raises(ConfigError):
            phase_time_seconds(0, 0, DEFAULT_NPU, 0)


class TestEngine:
    def test_conv_layer_compute(self):
        layer = conv_layer("c", "B", 64, 64, 56, 56, 3, 1, 1, batch=32)
        compute = NPUEngine().layer_compute(layer)
        assert compute.fwd_cycles > 0
        assert compute.total == (
            compute.fwd_cycles + compute.bact_cycles + compute.bwgt_cycles
        )

    def test_pool_layer_is_free(self):
        layer = pool_layer("p", "B", 64, 56, 56, 2, 2)
        compute = NPUEngine().layer_compute(layer)
        assert compute.total == 0
