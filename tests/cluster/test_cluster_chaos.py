"""Cluster chaos acceptance: seeded shard death mid-sweep.

The bar (mirrors the single-gateway chaos acceptance): a live 3-shard
cluster with a seeded ``shard.kill`` fired while a sweep is in flight
completes *every* job byte-identical to fault-free single-process
ground truth, with zero client-visible hangs, and surfaces the
failover/restart counters in the aggregated ``/metrics``.
"""

import pytest

from repro.server import ServerClient
from repro.service import api
from repro.service.spec import SimJobSpec

from tests.cluster.conftest import cheap_spec, needs_fork, wait_until

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

#: One deterministic plan for the whole cluster. ``shard.kill`` is
#: checked once per ready shard per supervisor tick, so ``after=2``
#: SIGKILLs the third shard probed on the very first tick — while the
#: sweep's submissions are still streaming in. ``router.slow`` adds
#: seeded latency jitter on the router's own request path.
CHAOS = (
    "seed=1301;"
    "shard.kill:rate=1,max=1,after=2;"
    "router.slow:rate=0.1,delay_ms=2,max=25"
)

BATCHES = [16 + 4 * i for i in range(32)]


@needs_fork
class TestClusterChaosAcceptance:
    def test_sweep_survives_shard_death_byte_identical(
        self, live_cluster
    ):
        # Fault-free ground truth, computed in-process before any
        # chaos is armed.
        expected = {}
        for batch in BATCHES:
            outcome = api.submit(
                SimJobSpec.from_dict(cheap_spec(batch=batch)),
                cache=None,
            )
            assert outcome.ok
            expected[batch] = outcome.result.to_dict()

        cluster = live_cluster(
            shards=3,
            probe_interval_seconds=0.05,
            faults=CHAOS,
        )
        client = ServerClient(cluster.url, max_retries=8)

        # Sweep 1: the seeded kill lands during this sweep. Every
        # submission is admitted (spill absorbs the dying shard),
        # every poll answers (re-homing absorbs lost jobs), and
        # wait_for's bounded timeout doubles as the no-hangs check.
        specs = [cheap_spec(batch=batch) for batch in BATCHES]
        envelopes = client.submit(specs)
        assert len(envelopes) == len(BATCHES)
        finals = client.wait_for(
            [e["id"] for e in envelopes], timeout=120.0
        )
        for batch, final in zip(BATCHES, finals):
            assert final["status"] == "done", final
            assert final["result"] == expected[batch]

        # The chaos actually happened, and the cluster healed: the
        # kill fired, the failover re-routed, the supervisor restarted
        # the victim back to a full fleet.
        wait_until(
            lambda: cluster.supervisor.ready_count() == 3, timeout=30.0
        )
        text = cluster.metrics_text()
        assert 'faults_injected_total{site="shard.kill"}' in text
        assert "repro_cluster_failovers_total" in text
        assert "repro_cluster_restarts_total" in text
        assert "repro_cluster_rehash_moves_total" in text

        # Sweep 2 against the healed fleet: warm now, still identical.
        envelopes = client.submit(specs)
        finals = client.wait_for(
            [e["id"] for e in envelopes], timeout=120.0
        )
        for batch, final in zip(BATCHES, finals):
            assert final["status"] == "done", final
            assert final["result"] == expected[batch]

        # Nothing queued, nothing running, nothing lost.
        health = client.healthz()
        counts = health["jobs"]
        assert counts.get("queued", 0) == 0
        assert counts.get("running", 0) == 0
        assert counts.get("done", 0) == 2 * len(BATCHES)
