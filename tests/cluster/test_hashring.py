"""The consistent-hash ring: determinism, balance, minimal movement."""

import pytest

from repro.cluster import HashRing

NODES = ["s0", "s1", "s2"]
KEYS = [f"spec-{i:04d}" for i in range(3000)]


def ring_of(nodes, vnodes=64):
    ring = HashRing(vnodes=vnodes)
    for node in nodes:
        ring.add(node)
    return ring


class TestRouting:
    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert ring.route("anything") is None
        assert ring.preference("anything") == []
        assert len(ring) == 0

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_routing_is_deterministic_across_instances(self):
        # Two independently built rings (different insertion order)
        # must agree on every key — sha256 points, not hash().
        a = ring_of(NODES)
        b = ring_of(list(reversed(NODES)))
        for key in KEYS[:500]:
            assert a.route(key) == b.route(key)

    def test_add_and_remove_report_vnode_counts(self):
        ring = HashRing(vnodes=16)
        assert ring.add("s0") == 16
        assert ring.add("s0") == 0  # idempotent
        assert "s0" in ring
        assert ring.remove("s0") == 16
        assert ring.remove("s0") == 0
        assert "s0" not in ring

    def test_key_space_is_reasonably_balanced(self):
        ring = ring_of(NODES)
        counts = {node: 0 for node in NODES}
        for key in KEYS:
            counts[ring.route(key)] += 1
        # 64 vnodes/node keeps every shard within a loose band of the
        # fair share (1/3); the property that matters is "no shard is
        # starved or doubly loaded".
        for node, count in counts.items():
            assert 0.15 * len(KEYS) < count < 0.55 * len(KEYS), counts


class TestMinimalMovement:
    def test_remove_moves_only_the_dead_nodes_keys(self):
        ring = ring_of(NODES)
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("s1")
        for key in KEYS:
            after = ring.route(key)
            if before[key] == "s1":
                assert after in ("s0", "s2")
            else:
                # Surviving shards keep their keys: cache locality
                # elsewhere is untouched by the failover.
                assert after == before[key]

    def test_readd_restores_the_exact_mapping(self):
        # A restarted shard rejoins under the same id, so recovery
        # moves keys *back* to exactly where they were — zero churn
        # relative to the pre-failure ring.
        ring = ring_of(NODES)
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("s2")
        ring.add("s2")
        assert {key: ring.route(key) for key in KEYS} == before


class TestPreference:
    def test_owner_heads_the_preference_order(self):
        ring = ring_of(NODES)
        for key in KEYS[:200]:
            order = ring.preference(key)
            assert order[0] == ring.route(key)
            assert sorted(order) == sorted(NODES)  # all, distinct

    def test_preference_is_the_failover_order(self):
        # Removing the owner promotes the key's second choice: the
        # router's spill target and the failover target are the same
        # deterministic walk.
        ring = ring_of(NODES)
        key = KEYS[7]
        first, second = ring.preference(key)[:2]
        ring.remove(first)
        assert ring.route(key) == second

    def test_limit_truncates(self):
        ring = ring_of(NODES)
        assert len(ring.preference(KEYS[0], limit=2)) == 2
        assert len(ring.preference(KEYS[0], limit=99)) == len(NODES)
