"""ClusterConfig validation, shard-config pass-through, and the CLI."""

import pytest

from repro.cluster import ClusterConfig
from repro.cluster.__main__ import _parser, main
from repro.errors import ConfigError
from repro.server import ServerConfig


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"port": -1},
            {"shards": 0},
            {"vnodes": 0},
            {"probe_interval_seconds": 0},
            {"probe_timeout_seconds": -1.0},
            {"probe_misses": 0},
            {"restart_budget": -1},
            {"restart_backoff_seconds": 0},
            {"max_batch": 0},
            {"max_tracked_jobs": 0},
        ],
    )
    def test_bad_values_rejected(self, overrides):
        with pytest.raises(ConfigError):
            ClusterConfig(**overrides)

    def test_defaults_construct(self):
        config = ClusterConfig()
        assert config.shards == 3
        assert config.restart_budget >= 1


class TestShardConfig:
    def test_shards_always_bind_ephemeral_ports(self):
        config = ClusterConfig(port=8123)
        assert config.shard_config().port == 0

    def test_gateway_knobs_forwarded_verbatim(self, tmp_path):
        config = ClusterConfig(
            shard_workers=2,
            shard_queue_depth=7,
            cache_dir=str(tmp_path),
            job_timeout_seconds=12.5,
            job_max_retries=4,
            quarantine_ttl_seconds=3.0,
            faults="seed=9;engine.slow:rate=0.1,delay_ms=1",
        )
        shard = config.shard_config()
        assert shard.workers == 2
        assert shard.queue_depth == 7
        assert shard.cache_dir == str(tmp_path)
        assert shard.job_timeout_seconds == 12.5
        assert shard.job_max_retries == 4
        assert shard.quarantine_ttl_seconds == 3.0
        # Same plan text = same seed: shard-side sites fire under the
        # one deterministic schedule the whole cluster shares.
        assert shard.faults == config.faults

    def test_kwargs_round_trip_through_pickleable_dict(self):
        # Shard children rebuild their ServerConfig from plain kwargs
        # shipped over the spawn pipe; the dict must reconstruct the
        # exact config.
        config = ClusterConfig(shard_queue_depth=9)
        kwargs = config.shard_config_kwargs()
        assert isinstance(kwargs, dict)
        assert ServerConfig(**kwargs) == config.shard_config()


class TestCli:
    def test_parser_defaults_mirror_config_defaults(self):
        args = _parser().parse_args([])
        defaults = ClusterConfig()
        assert args.shards == defaults.shards
        assert args.probe_interval == defaults.probe_interval_seconds
        assert args.probe_misses == defaults.probe_misses
        assert args.restart_budget == defaults.restart_budget
        assert args.restart_backoff == defaults.restart_backoff_seconds
        assert args.quarantine_ttl is None
        assert args.faults is None

    def test_bad_config_exits_2(self, capsys):
        assert main(["--shards", "0"]) == 2
        assert "cannot start cluster" in capsys.readouterr().err

    def test_bad_fault_plan_exits_2(self, capsys):
        assert main(["--faults", "nonsense:rate=1"]) == 2
        assert "cannot start cluster" in capsys.readouterr().err
