"""The router's job book-keeping: ids, re-homing, bounded eviction."""

from repro.cluster import RouterJobStore


def record(store, n=1, shard="s0", status="queued"):
    jobs = [
        store.record(
            {"network": "MLP1"}, f"key-{i}", shard, f"job-{i:04d}", status
        )
        for i in range(n)
    ]
    return jobs if n > 1 else jobs[0]


class TestRouterJobStore:
    def test_router_ids_are_minted_monotonically(self):
        store = RouterJobStore()
        a, b = record(store, n=2)
        assert a.id == "cjob-00000001"
        assert b.id == "cjob-00000002"
        assert store.get(a.id) is a
        assert store.get("cjob-nope") is None

    def test_status_updates_and_counts(self):
        store = RouterJobStore()
        a, b = record(store, n=2)
        store.update_status(a.id, "running")
        store.update_status(b.id, "done")
        store.update_status(b.id, None)  # no-op, never clobbers
        store.update_status("cjob-nope", "done")  # unknown id: no-op
        assert store.counts() == {"running": 1, "done": 1}

    def test_owned_by_lists_only_inflight_jobs(self):
        store = RouterJobStore()
        a, b, c = record(store, n=3)
        store.update_status(b.id, "done")
        assert {j.id for j in store.owned_by("s0")} == {a.id, c.id}
        assert store.owned_by("s9") == []

    def test_reassign_moves_the_shard_home(self):
        store = RouterJobStore()
        job = record(store)
        store.reassign(job.id, "s2", "job-9999", "running")
        assert job.shard_id == "s2"
        assert job.shard_job_id == "job-9999"
        assert job.status == "running"
        assert [j.id for j in store.owned_by("s2")] == [job.id]
        assert store.owned_by("s0") == []
        store.reassign("cjob-nope", "s1", "x", "queued")  # no-op

    def test_terminal_records_evicted_past_the_bound(self):
        store = RouterJobStore(max_tracked=2)
        jobs = record(store, n=4)
        for job in jobs[:3]:
            store.update_status(job.id, "done")
        # Oldest terminal record fell off; in-flight ones never do.
        assert store.get(jobs[0].id) is None
        assert store.get(jobs[1].id) is not None
        assert store.get(jobs[2].id) is not None
        assert store.get(jobs[3].id) is not None

    def test_going_nonterminal_again_restores_retention(self):
        # A re-homed job can regress done -> queued (re-execution on a
        # new shard); it must leave the eviction queue while in flight.
        store = RouterJobStore(max_tracked=1)
        a, b = record(store, n=2)
        store.update_status(a.id, "done")
        store.update_status(a.id, "queued")
        store.update_status(b.id, "done")
        assert store.get(a.id) is not None
        assert store.get(b.id) is not None
