"""Shared fixtures for the sharded serving tier suite.

Clusters bind port 0 and use aggressive probe/backoff settings so
failover tests converge in tenths of seconds instead of the
production-default seconds. Fault plans and the default metrics
registry are process-global (the router runs in *this* process); every
test starts and ends with them clean, so the suite stays deterministic
even inside the chaos CI job.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro import faults
from repro.cluster import ClusterConfig, create_cluster
from repro.obs.metrics import set_default_registry
from repro.obs.trace import disable_tracing
from repro.service import pool

#: Live-cluster tests fork shard gateway children.
needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard processes require the fork start method",
)

#: The cheapest full job: MLP1, two designs, narrow stripes.
CHEAP_SPEC = {
    "network": "MLP1",
    "columns_per_stripe": 8,
    "designs": ["Baseline", "GradPIM-BD"],
}

#: Supervisor knobs tuned for test wall-clock: fast probes, short
#: backoff, snappy Retry-After.
FAST = dict(
    port=0,
    probe_interval_seconds=0.1,
    probe_timeout_seconds=1.0,
    probe_misses=2,
    restart_backoff_seconds=0.1,
    restart_backoff_max_seconds=1.0,
    retry_after_seconds=0.05,
)


def cheap_spec(batch: int = 128) -> dict:
    return dict(CHEAP_SPEC, batch=batch)


def wait_until(predicate, timeout=15.0, poll=0.02):
    """Poll until ``predicate()`` is true (supervision is async)."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("condition never became true")
        time.sleep(poll)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.uninstall()
    pool.clear_quarantine()
    set_default_registry(None)
    disable_tracing()
    yield
    faults.uninstall()
    pool.clear_quarantine()
    set_default_registry(None)
    disable_tracing()


@pytest.fixture()
def live_cluster(tmp_path):
    """Factory: start background clusters (shared on-disk cache root,
    fast supervision), stop them all at teardown."""
    clusters = []

    def start(**overrides):
        defaults = dict(FAST, cache_dir=str(tmp_path / "cache"))
        config = ClusterConfig(**{**defaults, **overrides})
        cluster = create_cluster(config)
        clusters.append(cluster)
        cluster.start_background()
        return cluster

    yield start
    for cluster in clusters:
        cluster.stop()
