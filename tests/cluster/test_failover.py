"""Supervised failover: shard death, re-homing, restart, crash loops."""

import os
import signal

import pytest

from repro.cluster import DEAD, FAILED, READY
from repro.obs.metrics import parse_prometheus
from repro.server import ServerClient, ServerError

from tests.cluster.conftest import cheap_spec, needs_fork, wait_until

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def metric_sum(cluster, family: str) -> float:
    families = parse_prometheus(cluster.metrics_text())
    return sum(families.get(family, {}).values())


@needs_fork
class TestFailover:
    def test_dead_shard_rehomes_jobs_and_restarts(self, live_cluster):
        cluster = live_cluster(shards=3)
        client = ServerClient(cluster.url, max_retries=3)
        spec = cheap_spec(batch=72)
        [envelope] = client.submit(spec, wait=30.0)
        assert envelope["status"] == "done"
        owner = cluster.supervisor.get(envelope["shard"])

        # SIGKILL the owning shard out from under the router.
        os.kill(owner.pid, signal.SIGKILL)

        # Polling the router id still answers: the job is re-homed to
        # a live shard and — thanks to the shared content-addressed
        # cache — lands the byte-identical result without a client
        # ever seeing the failure.
        final = client.wait_for([envelope["id"]], timeout=60.0)[0]
        assert final["status"] == "done"
        assert final["result"] == envelope["result"]

        # The supervisor declares the death (probe or router report),
        # then restarts the shard under the same id; its hash range
        # moves back with zero residual churn.
        wait_until(
            lambda: metric_sum(
                cluster, "repro_cluster_failovers_total"
            ) >= 1
        )
        wait_until(
            lambda: owner.state == READY and owner.restarts >= 1,
            timeout=30.0,
        )
        assert cluster.supervisor.ready_count() == 3
        families = parse_prometheus(cluster.metrics_text())
        failovers = families["repro_cluster_failovers_total"]
        assert sum(failovers.values()) >= 1
        assert any('shard="' + owner.id in k for k in failovers)
        assert metric_sum(cluster, "repro_cluster_restarts_total") >= 1
        assert (
            metric_sum(cluster, "repro_cluster_rehash_moves_total")
            >= cluster.config.vnodes
        )

    def test_submissions_fail_over_while_a_shard_is_down(
        self, live_cluster
    ):
        cluster = live_cluster(
            shards=2,
            restart_backoff_seconds=5.0,
            restart_backoff_max_seconds=5.0,
        )
        client = ServerClient(cluster.url, max_retries=3)
        victim = cluster.supervisor.get("s0")
        os.kill(victim.pid, signal.SIGKILL)
        wait_until(lambda: victim.state == DEAD)
        # Every key routes somewhere live: submissions meant for the
        # dead shard spill to its ring successor instead of erroring.
        envelopes = client.submit(
            [cheap_spec(batch=b) for b in (80, 88, 96)], wait=30.0
        )
        assert {e["status"] for e in envelopes} == {"done"}
        assert {e["shard"] for e in envelopes} == {"s1"}

    def test_crash_loop_parks_the_shard_as_failed(self, live_cluster):
        cluster = live_cluster(shards=2, restart_budget=0)
        victim = cluster.supervisor.get("s1")
        os.kill(victim.pid, signal.SIGKILL)
        # Budget 0: the first death exhausts the restart allowance, so
        # the shard parks FAILED instead of flapping forever.
        wait_until(lambda: victim.state == FAILED)
        assert metric_sum(cluster, "repro_cluster_crash_loops_total") == 1
        # The survivor keeps the whole key space.
        client = ServerClient(cluster.url, max_retries=3)
        [envelope] = client.submit(cheap_spec(batch=104), wait=30.0)
        assert envelope["status"] == "done"
        assert envelope["shard"] == "s0"

    def test_total_outage_degrades_to_503_and_synthetic_queued(
        self, live_cluster
    ):
        cluster = live_cluster(shards=1, restart_budget=0)
        client = ServerClient(cluster.url, max_retries=0)
        [envelope] = client.submit(cheap_spec(batch=112), wait=30.0)
        only = cluster.supervisor.get("s0")
        os.kill(only.pid, signal.SIGKILL)
        wait_until(lambda: only.state == FAILED)

        # Admission: 503 + Retry-After — the *only* case the router
        # rejects, because no replica can admit.
        with pytest.raises(ServerError) as err:
            client.submit(cheap_spec(batch=120))
        assert err.value.status == 503
        status, _, _ = client._request("GET", "/readyz")
        assert status == 503

        # Polling: a synthetic queued envelope, not a hang or a 500 —
        # the client keeps polling and a recovered cluster would
        # re-home on a later poll.
        poll = client.job(envelope["id"])
        assert poll["status"] == "queued"
        assert poll["shard"] is None
        assert metric_sum(cluster, "repro_cluster_polls_unplaced_total") >= 1
