"""Live cluster serving: the /v1 protocol through the router.

Every test here boots real shard gateway children (fork) behind a
background router and drives it with the unchanged ``ServerClient`` —
the point being that a cluster is protocol-indistinguishable from one
gateway.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import parse_prometheus
from repro.server import ServerClient, ServerError
from repro.service.cache import cache_key
from repro.service.spec import SimJobSpec

from tests.cluster.conftest import cheap_spec, needs_fork

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def get_json(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@needs_fork
class TestClusterServing:
    def test_healthz_shows_the_fleet(self, live_cluster):
        cluster = live_cluster(shards=2)
        client = ServerClient(cluster.url, max_retries=0)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "cluster-router"
        assert health["ring_nodes"] == ["s0", "s1"]
        assert all(
            shard["state"] == "ready"
            for shard in health["shards"].values()
        )

    def test_readyz_reports_serving_capacity(self, live_cluster):
        cluster = live_cluster(shards=2)
        status, body = get_json(f"{cluster.url}/readyz")
        assert status == 200
        assert body == {"ready": True, "ready_shards": 2}

    def test_submit_executes_and_routes_by_content_hash(
        self, live_cluster
    ):
        cluster = live_cluster(shards=2)
        client = ServerClient(cluster.url, max_retries=0)
        spec = cheap_spec(batch=32)
        [envelope] = client.submit(spec, wait=30.0)
        assert envelope["status"] == "done"
        assert envelope["id"].startswith("cjob-")
        assert envelope["result"]["network"] == "MLP1"
        # The router placed the job on the ring owner of the spec's
        # content hash — sticky routing is what preserves coalescing
        # and cache locality under sharding.
        key = cache_key(SimJobSpec.from_dict(spec))
        assert envelope["shard"] == cluster.supervisor.ring.route(key)

    def test_batch_lands_byte_identical_results(self, live_cluster):
        from repro.service import api

        specs = [cheap_spec(batch=b) for b in (16, 24, 40)]
        expected = {
            spec["batch"]: api.submit(
                SimJobSpec.from_dict(spec), cache=None
            ).result.to_dict()
            for spec in specs
        }
        cluster = live_cluster(shards=2)
        client = ServerClient(cluster.url, max_retries=0)
        envelopes = client.submit(specs)
        finals = client.wait_for([e["id"] for e in envelopes])
        for spec, final in zip(specs, finals):
            assert final["status"] == "done"
            assert final["result"] == expected[spec["batch"]]

    def test_resubmission_is_served_from_cache(self, live_cluster):
        cluster = live_cluster(shards=2)
        client = ServerClient(cluster.url, max_retries=0)
        spec = cheap_spec(batch=48)
        [first] = client.submit(spec, wait=30.0)
        [again] = client.submit(spec, wait=30.0)
        assert again["status"] == "done"
        assert again["result"] == first["result"]
        # Same content hash, same shard: the resubmission hit the
        # owner's cache rather than re-routing.
        assert again["shard"] == first["shard"]

    def test_results_endpoint_proxies_the_shared_cache(
        self, live_cluster
    ):
        cluster = live_cluster(shards=2)
        client = ServerClient(cluster.url, max_retries=0)
        [envelope] = client.submit(cheap_spec(batch=56), wait=30.0)
        found = client.result(envelope["spec_hash"])
        assert found["result"] == envelope["result"]
        with pytest.raises(ServerError) as err:
            client.result("0" * 64)
        assert err.value.status == 404

    def test_poll_of_unknown_router_id_is_404(self, live_cluster):
        cluster = live_cluster(shards=2)
        client = ServerClient(cluster.url, max_retries=0)
        with pytest.raises(ServerError) as err:
            client.job("cjob-99999999")
        assert err.value.status == 404

    def test_metrics_aggregate_router_and_relabelled_shards(
        self, live_cluster
    ):
        cluster = live_cluster(shards=2)
        client = ServerClient(cluster.url, max_retries=0)
        client.submit(cheap_spec(batch=64), wait=30.0)
        text = client.metrics_text()
        families = parse_prometheus(text)
        up = families["repro_cluster_shard_up"]
        assert up.get('{shard="s0"}') == 1.0
        assert up.get('{shard="s1"}') == 1.0
        assert families["repro_cluster_shards_ready"][""] == 2.0
        # Shard expositions ride along relabelled, family names
        # preserved — the loadgen per-stage attribution sums across
        # `shard=` label sets without knowing the cluster exists.
        requests = families["repro_server_requests_total"]
        assert any('shard="s' in labels for labels in requests)
        executions = families["repro_server_executions_total"]
        assert sum(executions.values()) >= 1
