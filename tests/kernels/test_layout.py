"""Layout tests: bank coloring and the same-group/different-bank rule."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.geometry import DeviceGeometry
from repro.errors import CompileError
from repro.kernels.layout import UpdateLayout
from repro.pim.functional import FunctionalDRAM

GEOM = DeviceGeometry()


def _momentum_layout(n_cols=512):
    """The Fig. 5 working set: theta/momentum/grad + quantized copies."""
    return UpdateLayout(
        liveness_groups=[
            frozenset({"q_grad", "grad"}),
            frozenset({"theta", "q_theta"}),
            frozenset({"theta", "grad", "momentum"}),
        ],
        packed_ratios={"q_grad": 4, "q_theta": 4},
        n_hp_columns=n_cols,
        geometry=GEOM,
    )


class TestColoring:
    def test_conflicting_arrays_get_distinct_banks(self):
        layout = _momentum_layout()
        banks = {
            name: layout.placement(name).bank
            for name in ("theta", "grad", "momentum")
        }
        assert len(set(banks.values())) == 3

    def test_quantized_copies_avoid_their_pairs(self):
        layout = _momentum_layout()
        assert (
            layout.placement("q_grad").bank
            != layout.placement("grad").bank
        )
        assert (
            layout.placement("q_theta").bank
            != layout.placement("theta").bank
        )

    def test_non_conflicting_arrays_may_share(self):
        layout = UpdateLayout(
            [frozenset({"a", "b"}), frozenset({"c", "d"})],
            {},
            128,
            GEOM,
        )
        used = {
            layout.placement(n).bank for n in ("a", "b", "c", "d")
        }
        assert len(used) <= 2

    def test_too_many_live_arrays_rejected(self):
        with pytest.raises(CompileError):
            UpdateLayout(
                [frozenset({"a", "b", "c", "d", "e"})], {}, 128, GEOM
            )

    def test_shared_bank_stacks_rows(self):
        layout = UpdateLayout(
            [frozenset({"a", "b"}), frozenset({"a", "c"}),
             frozenset({"b", "c"})],
            {},
            128,
            GEOM,
        )
        # Three mutually-conflicting arrays in >= 3 banks.
        banks = {layout.placement(n).bank for n in "abc"}
        assert len(banks) == 3


class TestAddressing:
    def test_placement_invariant_all_columns(self):
        """Matching hp columns of every pair of arrays share
        (rank, group, row-offset, column) in different banks."""
        layout = _momentum_layout(4096)
        for j in (0, 1, 127, 128, 2047, 2048, 4095):
            a = layout.hp_coords("theta", j)
            b = layout.hp_coords("momentum", j)
            assert (a.rank, a.bankgroup, a.col) == (
                b.rank, b.bankgroup, b.col,
            )
            assert a.bank != b.bank

    def test_quarter_row_packing_alignment(self):
        """lp column j//4 sits in the same stripe as hp column j —
        the §V-B rule that wastes capacity to save bandwidth."""
        layout = _momentum_layout(4096)
        for j in (0, 4, 127, 128, 500, 2048, 4092):
            hp = layout.hp_coords("theta", j)
            lp = layout.lp_coords("q_theta", j // 4)
            assert hp.rank == lp.rank
            assert hp.bankgroup == lp.bankgroup

    def test_lp_columns_use_first_quarter_of_row(self):
        layout = _momentum_layout(4096)
        cpr = GEOM.columns_per_row
        for c in range(cpr // 4):
            assert layout.lp_coords("q_theta", c).col < cpr // 4

    def test_stripe_rotation(self):
        layout = _momentum_layout(4096)
        a = layout.hp_coords("theta", 0)
        b = layout.hp_coords("theta", GEOM.columns_per_row)
        assert b.bankgroup == (a.bankgroup + 1) % GEOM.bankgroups

    def test_row_advances_after_all_stripes(self):
        layout = _momentum_layout(8192)
        stripes = GEOM.bankgroups * GEOM.ranks
        j = GEOM.columns_per_row * stripes
        a = layout.hp_coords("theta", 0)
        b = layout.hp_coords("theta", j)
        assert b.row == a.row + 1
        assert b.bankgroup == a.bankgroup and b.rank == a.rank

    def test_out_of_reservation_rejected(self):
        layout = _momentum_layout(128)
        with pytest.raises(CompileError):
            layout.hp_coords("theta", 10**7)

    def test_unknown_array_rejected(self):
        layout = _momentum_layout()
        with pytest.raises(CompileError):
            layout.placement("nonexistent")


class TestFunctionalRoundTrip:
    @given(st.integers(min_value=1, max_value=6000))
    @settings(max_examples=25, deadline=None)
    def test_hp_store_load(self, n):
        layout = _momentum_layout(max(1, -(-n * 4 // 64)) + 8)
        dram = FunctionalDRAM(GEOM)
        rng = np.random.default_rng(n)
        values = rng.normal(size=n).astype(np.float32)
        layout.store_hp_array(dram, "theta", values)
        out = layout.load_hp_array(dram, "theta", np.float32, n)
        np.testing.assert_array_equal(out, values)

    def test_lp_store_load(self):
        layout = _momentum_layout(512)
        dram = FunctionalDRAM(GEOM)
        values = np.arange(-100, 100, dtype=np.int8)
        layout.store_lp_array(dram, "q_grad", values)
        out = layout.load_lp_array(dram, "q_grad", np.int8, len(values))
        np.testing.assert_array_equal(out, values)

    def test_arrays_do_not_clobber_each_other(self, rng):
        layout = _momentum_layout(512)
        dram = FunctionalDRAM(GEOM)
        theta = rng.normal(size=1000).astype(np.float32)
        momentum = rng.normal(size=1000).astype(np.float32)
        layout.store_hp_array(dram, "theta", theta)
        layout.store_hp_array(dram, "momentum", momentum)
        np.testing.assert_array_equal(
            layout.load_hp_array(dram, "theta", np.float32, 1000), theta
        )
        np.testing.assert_array_equal(
            layout.load_hp_array(dram, "momentum", np.float32, 1000),
            momentum,
        )
