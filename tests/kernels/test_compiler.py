"""Compiler tests: the compiled kernel IS the optimizer.

The load-bearing property of the whole reproduction: executing the
compiled command stream on the byte-level functional DRAM produces
bit-for-bit the same parameter arrays as the recipe interpreter (which
is itself validated against the float64 textbook optimizers).
"""

import numpy as np
import pytest

from repro.dram.commands import CommandType
from repro.errors import CompileError
from repro.kernels.compiler import GRAD_ACCUMULATE, UpdateKernelCompiler
from repro.optim import (
    Adam,
    AdamW,
    AdaGrad,
    MomentumSGD,
    NAG,
    RMSprop,
    SGD,
    interpret_recipe,
)
from repro.optim.precision import (
    PRECISION_16_32,
    PRECISION_8_16,
    PRECISION_8_32,
    PRECISION_FULL,
)
from repro.pim.functional import FunctionalDRAM, FunctionalExecutor

LINEAR_OPTIMIZERS = [
    SGD(eta=0.01),
    MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4),
    NAG(eta=0.01, alpha=0.9),
]
ADAPTIVE_OPTIMIZERS = [
    Adam(eta=0.005),
    AdamW(eta=0.005, weight_decay=0.02),
    AdaGrad(eta=0.05),
    RMSprop(eta=0.01),
]
MIXED_PRECISIONS = [PRECISION_8_32, PRECISION_16_32, PRECISION_8_16]


def _execute_kernel(opt, precision, n, rng, extended=False,
                    fuse_quantize=False):
    """Compile + functionally execute; returns (outputs, expected)."""
    hp = precision.hp_bytes
    dtype = {4: np.float32, 2: np.float16}[hp]
    theta = rng.normal(0, 0.4, n).astype(dtype)
    grad = rng.normal(0, 0.2, n).astype(dtype)
    state = {
        name: rng.normal(0, 0.02, n).astype(dtype) ** 2
        for name in opt.state_arrays()
    }

    compiler = UpdateKernelCompiler(extended_alu=extended)
    kernel = compiler.compile(
        opt, precision, n_params=n, fuse_quantize=fuse_quantize
    )
    dram = FunctionalDRAM()
    layout = kernel.layout
    layout.store_hp_array(dram, "theta", theta)
    for name, arr in state.items():
        layout.store_hp_array(dram, name, arr)

    if precision.is_full:
        grad_in = grad
        layout.store_hp_array(dram, "grad", grad)
        executor = FunctionalExecutor(dram)
    else:
        spec = precision.quant_spec()
        q_grad = spec.quantize(grad)
        layout.store_lp_array(dram, "q_grad", q_grad)
        grad_in = spec.dequantize(q_grad)
        executor = FunctionalExecutor(dram, spec)
    executor.execute(kernel.commands)

    arrays = {"theta": theta, "grad": grad_in}
    arrays.update(state)
    expected = interpret_recipe(
        opt.recipe(), arrays, dtype=np.dtype(dtype)
    )

    outputs = {
        "theta": layout.load_hp_array(dram, "theta", dtype, n)
    }
    for name in opt.state_arrays():
        outputs[name] = layout.load_hp_array(dram, name, dtype, n)
    if not precision.is_full:
        outputs["q_theta"] = layout.load_lp_array(
            dram, "q_theta", precision.quant_spec().lp_dtype, n
        )
        expected["q_theta"] = precision.quant_spec().quantize(
            expected["theta"]
        )
    return outputs, expected


class TestFunctionalEquivalence:
    @pytest.mark.parametrize(
        "opt", LINEAR_OPTIMIZERS, ids=lambda o: o.name
    )
    @pytest.mark.parametrize(
        "precision", MIXED_PRECISIONS + [PRECISION_FULL],
        ids=lambda p: p.name,
    )
    def test_linear_optimizers(self, opt, precision, rng):
        outputs, expected = _execute_kernel(opt, precision, 777, rng)
        for name, out in outputs.items():
            np.testing.assert_array_equal(
                out, expected[name], err_msg=name
            )

    @pytest.mark.parametrize(
        "opt", ADAPTIVE_OPTIMIZERS, ids=lambda o: o.name
    )
    def test_adaptive_optimizers(self, opt, rng):
        outputs, expected = _execute_kernel(
            opt, PRECISION_8_32, 500, rng, extended=True
        )
        for name, out in outputs.items():
            np.testing.assert_allclose(
                out.astype(np.float64),
                expected[name].astype(np.float64),
                atol=1e-6,
                err_msg=name,
            )

    def test_multi_stripe_array(self, rng):
        """An array spanning all 16 stripes and several rows."""
        opt = MomentumSGD(eta=0.01, alpha=0.9)
        outputs, expected = _execute_kernel(
            opt, PRECISION_8_32, 40000, rng
        )
        np.testing.assert_array_equal(
            outputs["theta"], expected["theta"]
        )

    def test_fuse_quantize_same_result(self, rng):
        opt = MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4)
        fused, expected = _execute_kernel(
            opt, PRECISION_8_32, 900, rng, fuse_quantize=True
        )
        for name in fused:
            np.testing.assert_array_equal(
                fused[name], expected[name], err_msg=name
            )

    def test_grad_accumulate_kernel(self, rng):
        acc = rng.normal(size=300).astype(np.float32)
        incoming = rng.normal(size=300).astype(np.float32)
        kernel = UpdateKernelCompiler().compile(
            GRAD_ACCUMULATE, PRECISION_FULL, n_params=300
        )
        dram = FunctionalDRAM()
        kernel.layout.store_hp_array(dram, "theta", acc)
        kernel.layout.store_hp_array(dram, "incoming", incoming)
        FunctionalExecutor(dram).execute(kernel.commands)
        out = kernel.layout.load_hp_array(dram, "theta", np.float32, 300)
        np.testing.assert_array_equal(out, acc + incoming)


class TestKernelStructure:
    def test_momentum_command_rate_matches_fig5(self):
        """Fig. 5's momentum procedure: 9 update commands per column
        (4 scaled reads, 3 adds, 2 writebacks)."""
        opt = MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4)
        kernel = UpdateKernelCompiler().compile(
            opt, PRECISION_8_32, columns_per_stripe=16
        )
        update_cmds = kernel.phase_counts["update"]
        per_column = update_cmds / kernel.n_hp_columns
        # 9 per column plus a little row-management overhead.
        assert 9.0 <= per_column < 10.0

    def test_dequantize_phase_shape(self):
        """1 qreg load + ratio x (dequant + writeback) per lp column."""
        opt = SGD(eta=0.01)
        kernel = UpdateKernelCompiler().compile(
            opt, PRECISION_8_32, columns_per_stripe=16
        )
        counts = {}
        for cmd in kernel.commands:
            counts[cmd.kind] = counts.get(cmd.kind, 0) + 1
        n_lp = kernel.n_hp_columns // 4
        assert counts[CommandType.QREG_LOAD] == n_lp
        assert counts[CommandType.PIM_DEQUANT] == kernel.n_hp_columns
        assert counts[CommandType.QREG_STORE] == n_lp
        assert counts[CommandType.PIM_QUANT] == kernel.n_hp_columns

    def test_full_precision_skips_quant_phases(self):
        opt = MomentumSGD(eta=0.01, alpha=0.9)
        kernel = UpdateKernelCompiler().compile(
            opt, PRECISION_FULL, columns_per_stripe=16
        )
        kinds = {cmd.kind for cmd in kernel.commands}
        assert CommandType.QREG_LOAD not in kinds
        assert CommandType.PIM_QUANT not in kinds
        assert "dequantize" not in kernel.phase_counts

    def test_acts_paired_with_pres(self):
        opt = MomentumSGD(eta=0.01, alpha=0.9)
        kernel = UpdateKernelCompiler().compile(
            opt, PRECISION_8_32, columns_per_stripe=8
        )
        acts = sum(
            1 for c in kernel.commands if c.kind is CommandType.ACT
        )
        pres = sum(
            1 for c in kernel.commands if c.kind is CommandType.PRE
        )
        assert acts == pres

    def test_mrw_reprogramming_between_adam_passes(self):
        kernel = UpdateKernelCompiler(extended_alu=True).compile(
            Adam(eta=0.001), PRECISION_8_32, columns_per_stripe=8
        )
        mrws = [
            c for c in kernel.commands if c.kind is CommandType.MRW
        ]
        # Three passes with distinct coefficients on four ranks.
        assert len(mrws) >= 3 * 4
        assert len(kernel.pass_slots) == 3

    def test_commands_dependencies_point_backwards(self):
        kernel = UpdateKernelCompiler().compile(
            MomentumSGD(eta=0.01, alpha=0.9), PRECISION_8_32,
            columns_per_stripe=8,
        )
        for i, cmd in enumerate(kernel.commands):
            assert all(0 <= d < i for d in cmd.deps)

    def test_scale_ids_within_slots(self):
        kernel = UpdateKernelCompiler().compile(
            MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4),
            PRECISION_8_32,
            columns_per_stripe=8,
        )
        for cmd in kernel.commands:
            if cmd.kind is CommandType.SCALED_READ:
                assert 0 <= cmd.scale_id < 4


class TestCompileErrors:
    def test_adaptive_requires_extended_alu(self):
        with pytest.raises(CompileError):
            UpdateKernelCompiler().compile(
                Adam(eta=0.001), PRECISION_8_32, n_params=64
            )

    def test_requires_exactly_one_size_argument(self):
        compiler = UpdateKernelCompiler()
        opt = SGD(eta=0.01)
        with pytest.raises(CompileError):
            compiler.compile(opt, PRECISION_8_32)
        with pytest.raises(CompileError):
            compiler.compile(
                opt, PRECISION_8_32, n_params=10, columns_per_stripe=4
            )

    def test_rejects_zero_params(self):
        with pytest.raises(CompileError):
            UpdateKernelCompiler().compile(
                SGD(eta=0.01), PRECISION_8_32, n_params=0
            )

    def test_rejects_oversized_sample(self):
        with pytest.raises(CompileError):
            UpdateKernelCompiler().compile(
                SGD(eta=0.01), PRECISION_8_32, columns_per_stripe=999
            )
