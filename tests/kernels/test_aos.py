"""AoS kernel-generator tests."""

import pytest

from repro.dram.commands import CommandType
from repro.dram.geometry import DeviceGeometry
from repro.errors import CompileError
from repro.kernels.aos import (
    AoSKernelGenerator,
    alu_ops_per_column,
    structure_bytes,
)
from repro.optim import Adam, MomentumSGD, SGD
from repro.optim.precision import PRECISION_8_32, PRECISION_FULL

GEOM = DeviceGeometry()
MOMENTUM = MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4)


class TestStructureBytes:
    def test_momentum_mixed_structure(self):
        # theta + grad + momentum (4 B each) + two 1 B codes -> 14 -> 16.
        assert structure_bytes(MOMENTUM, PRECISION_8_32) == 16

    def test_sgd_full_structure(self):
        # theta + grad only, full precision: 8 bytes.
        assert structure_bytes(SGD(eta=0.1), PRECISION_FULL) == 8

    def test_adam_structure(self):
        # theta + grad + m + v = 16 B + 2 codes -> 32.
        assert structure_bytes(Adam(eta=0.001), PRECISION_8_32) == 32


def test_alu_ops_counted_from_recipe():
    # Momentum with decay: (3-1) + (2-1) lincomb adds + 2 marshalling.
    assert alu_ops_per_column(MOMENTUM.recipe()) == 5


class TestGeneration:
    def test_unit_count_per_group(self):
        kernel = AoSKernelGenerator(GEOM).generate(
            MOMENTUM, PRECISION_8_32, columns_per_unit=4
        )
        assert kernel.n_units == GEOM.pim_units

    def test_unit_count_per_bank(self):
        kernel = AoSKernelGenerator(GEOM, per_bank=True).generate(
            MOMENTUM, PRECISION_8_32, columns_per_unit=4
        )
        assert kernel.n_units == GEOM.total_banks

    def test_params_per_column(self):
        kernel = AoSKernelGenerator(GEOM).generate(
            MOMENTUM, PRECISION_8_32, columns_per_unit=4
        )
        assert kernel.params_per_column == 4  # 64 B / 16 B structures

    def test_each_column_has_read_modify_write(self):
        kernel = AoSKernelGenerator(GEOM).generate(
            MOMENTUM, PRECISION_8_32, columns_per_unit=2
        )
        counts = {}
        for c in kernel.commands:
            counts[c.kind] = counts.get(c.kind, 0) + 1
        work = kernel.n_units * kernel.n_columns
        assert counts[CommandType.SCALED_READ] == work
        assert counts[CommandType.WRITEBACK] == work
        assert counts[CommandType.PIM_ADD] == work * 5

    def test_acts_paired_with_pres(self):
        kernel = AoSKernelGenerator(GEOM).generate(
            MOMENTUM, PRECISION_8_32, columns_per_unit=2
        )
        acts = sum(
            1 for c in kernel.commands if c.kind is CommandType.ACT
        )
        pres = sum(
            1 for c in kernel.commands if c.kind is CommandType.PRE
        )
        assert acts == pres == kernel.n_units

    def test_deps_point_backwards(self):
        kernel = AoSKernelGenerator(GEOM).generate(
            MOMENTUM, PRECISION_8_32, columns_per_unit=3
        )
        for i, cmd in enumerate(kernel.commands):
            assert all(0 <= d < i for d in cmd.deps)

    def test_rejects_bad_column_count(self):
        with pytest.raises(CompileError):
            AoSKernelGenerator(GEOM).generate(
                MOMENTUM, PRECISION_8_32, columns_per_unit=0
            )
