"""Baseline-stream tests: the no-PIM update's access structure."""

import pytest

from repro.dram.commands import CommandType
from repro.errors import CompileError
from repro.kernels.streams import BaselineStreamGenerator
from repro.optim import Adam, MomentumSGD, SGD
from repro.optim.precision import PRECISION_8_32, PRECISION_FULL

GEN = BaselineStreamGenerator()
MOMENTUM = MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4)


class TestThreePhaseBaseline:
    def test_momentum_mixed_bytes_per_param(self):
        """The paper-style baseline mirrors GradPIM's phases over the
        bus: dequantize (1+4 B), update (3x4 read + 2x4 write),
        quantize (4+1 B) = 30 B/param for 8/32 momentum."""
        stream = GEN.generate(
            MOMENTUM, PRECISION_8_32, columns_per_stripe=8
        )
        params = stream.n_hp_columns * 16
        assert stream.offchip_bytes(GEN.geometry) / params == (
            pytest.approx(30.0, rel=0.01)
        )

    def test_full_precision_bytes_per_param(self):
        """Full precision: read g/theta/v, write theta/v = 20 B."""
        stream = GEN.generate(
            MOMENTUM, PRECISION_FULL, columns_per_stripe=8
        )
        params = stream.n_hp_columns * 16
        assert stream.offchip_bytes(GEN.geometry) / params == (
            pytest.approx(20.0, rel=0.01)
        )

    def test_fused_baseline_bytes_per_param(self):
        """The idealized fused baseline: 18 B/param (ablation)."""
        stream = GEN.generate(
            MOMENTUM, PRECISION_8_32, columns_per_stripe=8, fused=True
        )
        params = stream.n_hp_columns * 16
        assert stream.offchip_bytes(GEN.geometry) / params == (
            pytest.approx(18.0, rel=0.01)
        )

    def test_plain_sgd_is_leaner(self):
        sgd = GEN.generate(
            SGD(eta=0.01), PRECISION_8_32, columns_per_stripe=8
        )
        mom = GEN.generate(
            MOMENTUM, PRECISION_8_32, columns_per_stripe=8
        )
        assert sgd.offchip_bytes(GEN.geometry) < mom.offchip_bytes(
            GEN.geometry
        )

    def test_adam_has_more_state_traffic(self):
        adam = GEN.generate(
            Adam(eta=0.001), PRECISION_8_32, columns_per_stripe=8
        )
        mom = GEN.generate(
            MOMENTUM, PRECISION_8_32, columns_per_stripe=8
        )
        assert adam.offchip_bytes(GEN.geometry) > mom.offchip_bytes(
            GEN.geometry
        )


class TestStreamStructure:
    def test_only_ddr_commands(self):
        stream = GEN.generate(
            MOMENTUM, PRECISION_8_32, columns_per_stripe=4
        )
        allowed = {
            CommandType.ACT, CommandType.PRE, CommandType.RD,
            CommandType.WR,
        }
        assert {c.kind for c in stream.commands} <= allowed

    def test_reads_and_writes_counted(self):
        stream = GEN.generate(
            MOMENTUM, PRECISION_8_32, columns_per_stripe=4
        )
        rd = sum(
            1 for c in stream.commands if c.kind is CommandType.RD
        )
        wr = sum(
            1 for c in stream.commands if c.kind is CommandType.WR
        )
        assert (rd, wr) == (stream.reads, stream.writes)

    def test_writes_depend_on_reads(self):
        stream = GEN.generate(
            MOMENTUM, PRECISION_8_32, columns_per_stripe=4
        )
        for cmd in stream.commands:
            if cmd.kind is CommandType.WR and "theta" in (cmd.tag or ""):
                assert cmd.deps  # the NPU computed from fetched data

    def test_deps_point_backwards(self):
        stream = GEN.generate(
            MOMENTUM, PRECISION_8_32, columns_per_stripe=4
        )
        for i, cmd in enumerate(stream.commands):
            assert all(0 <= d < i for d in cmd.deps)

    def test_full_precision_has_no_quantized_arrays(self):
        stream = GEN.generate(
            MOMENTUM, PRECISION_FULL, columns_per_stripe=4
        )
        for cmd in stream.commands:
            assert "q_" not in (cmd.tag or "")

    def test_requires_exactly_one_size(self):
        with pytest.raises(CompileError):
            GEN.generate(MOMENTUM, PRECISION_8_32)
        with pytest.raises(CompileError):
            GEN.generate(
                MOMENTUM, PRECISION_8_32, n_params=5,
                columns_per_stripe=5,
            )

    def test_adam_working_set_shares_a_bank(self):
        """Adam's baseline has 6 arrays > 4 banks: the layout falls
        back to sharing between the quantized copies."""
        stream = GEN.generate(
            Adam(eta=0.001), PRECISION_8_32, columns_per_stripe=4
        )
        banks = {
            name: stream.layout.placement(name).bank
            for name in stream.layout.arrays()
        }
        assert len(banks) == 6
        assert len(set(banks.values())) == 4
