"""Traffic-model tests: the Fig. 2 accounting."""

import pytest

from repro.errors import ConfigError
from repro.models.traffic import TrafficModel, PhaseTraffic, ZERO_TRAFFIC
from repro.models.zoo import build_network
from repro.optim.precision import PRECISION_8_32, PRECISION_FULL


@pytest.fixture(scope="module")
def resnet():
    return build_network("ResNet18")


class TestPhaseTraffic:
    def test_totals(self):
        t = PhaseTraffic(1, 2, 3, 4)
        assert t.total == 10
        assert t.fwd_bwd == 6

    def test_addition(self):
        t = PhaseTraffic(1, 2, 3, 4) + PhaseTraffic(10, 20, 30, 40)
        assert (t.fwd, t.bact, t.bwgt, t.wup) == (11, 22, 33, 44)

    def test_zero(self):
        assert ZERO_TRAFFIC.total == 0


class TestFig2Headlines:
    def test_mixed_precision_update_share(self, resnet):
        """Paper: 45.9% of traffic is the update phase (8/32)."""
        model = TrafficModel(
            precision=PRECISION_8_32, update_bytes_per_param=18.0
        )
        share = model.update_fraction(resnet)
        assert 0.40 <= share <= 0.55

    def test_full_precision_update_share(self, resnet):
        """Paper: 22.4% at full precision."""
        model = TrafficModel(
            precision=PRECISION_FULL, update_bytes_per_param=20.0
        )
        share = model.update_fraction(resnet)
        assert 0.15 <= share <= 0.30

    def test_last_block_dominated_by_update(self, resnet):
        """Paper: up to 80.5% for the conv5m block."""
        model = TrafficModel(
            precision=PRECISION_8_32, update_bytes_per_param=18.0
        )
        total = ZERO_TRAFFIC
        for layer in resnet.block("Block4"):
            total = total + model.layer_traffic(layer, resnet.batch)
        assert total.wup / total.total > 0.7

    def test_mixed_precision_shrinks_fwd_bwd(self, resnet):
        mixed = TrafficModel(precision=PRECISION_8_32,
                             update_bytes_per_param=18.0)
        full = TrafficModel(precision=PRECISION_FULL,
                            update_bytes_per_param=20.0)
        assert (
            mixed.network_traffic(resnet).fwd_bwd
            < 0.3 * full.network_traffic(resnet).fwd_bwd
        )

    def test_update_share_grows_with_mixed_precision(self, resnet):
        """The paper's §II motivation in one assertion."""
        mixed = TrafficModel(precision=PRECISION_8_32,
                             update_bytes_per_param=18.0)
        full = TrafficModel(precision=PRECISION_FULL,
                            update_bytes_per_param=20.0)
        assert mixed.update_fraction(resnet) > (
            1.8 * full.update_fraction(resnet)
        )


class TestMechanics:
    def test_first_layer_reads_input(self, resnet):
        model = TrafficModel()
        first = model.layer_traffic(
            resnet.layers[0], resnet.batch, first_layer=True
        )
        later = model.layer_traffic(
            resnet.layers[0], resnet.batch, first_layer=False
        )
        assert first.fwd > later.fwd

    def test_pool_layers_have_no_update(self, resnet):
        model = TrafficModel()
        pool = next(l for l in resnet.layers if l.kind == "pool")
        t = model.layer_traffic(pool, resnet.batch)
        assert t.wup == 0 and t.bwgt == 0

    def test_aos_penalty_scales_weight_traffic(self, resnet):
        plain = TrafficModel(update_bytes_per_param=0.0)
        aos = TrafficModel(
            update_bytes_per_param=0.0, aos_weight_penalty=4.0
        )
        fc = next(l for l in resnet.layers if l.kind == "linear")
        t_plain = plain.layer_traffic(fc, resnet.batch)
        t_aos = aos.layer_traffic(fc, resnet.batch)
        # FC traffic is weight-dominated: ~4x.
        assert t_aos.fwd > 3.0 * t_plain.fwd

    def test_aos_penalty_spares_activations(self, resnet):
        plain = TrafficModel(update_bytes_per_param=0.0)
        aos = TrafficModel(
            update_bytes_per_param=0.0, aos_weight_penalty=4.0
        )
        conv0 = resnet.layers[0]  # activation-dominated
        ratio = (
            aos.layer_traffic(conv0, resnet.batch).fwd
            / plain.layer_traffic(conv0, resnet.batch).fwd
        )
        assert ratio < 1.5

    def test_subbatching_kicks_in_for_large_working_sets(self, resnet):
        model = TrafficModel()
        conv0 = resnet.layers[0]
        fc = next(l for l in resnet.layers if l.kind == "linear")
        assert model.subbatches(conv0, resnet.batch) > 1
        assert model.subbatches(fc, resnet.batch) == 1

    def test_full_precision_gradient_writes_are_hp(self, resnet):
        mixed = TrafficModel(precision=PRECISION_8_32,
                             update_bytes_per_param=0.0)
        full = TrafficModel(precision=PRECISION_FULL,
                            update_bytes_per_param=0.0)
        conv = resnet.layers[2]
        assert full.layer_traffic(conv, resnet.batch).bwgt == (
            pytest.approx(
                4 * mixed.layer_traffic(conv, resnet.batch).bwgt
            )
        )

    def test_per_layer_matches_network_total(self, resnet):
        model = TrafficModel(update_bytes_per_param=18.0)
        total = ZERO_TRAFFIC
        for _, t in model.per_layer(resnet):
            total = total + t
        net = model.network_traffic(resnet)
        assert total.total == pytest.approx(net.total)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrafficModel(update_bytes_per_param=-1.0)
        with pytest.raises(ConfigError):
            TrafficModel(aos_weight_penalty=0.5)
