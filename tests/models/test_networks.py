"""Workload tests: shapes against published parameter counts."""

import pytest

from repro.errors import ConfigError
from repro.models.graph import NetworkGraph
from repro.models.layers import conv_layer, linear_layer
from repro.models.zoo import (
    DEFAULT_BATCH,
    PAPER_NETWORKS,
    build_network,
)


class TestRegistry:
    def test_five_paper_networks(self):
        assert PAPER_NETWORKS == (
            "ResNet18", "ResNet50", "MobileNet", "MLP1", "AlphaGoZero",
        )

    def test_default_batches(self):
        assert DEFAULT_BATCH["ResNet18"] == 32
        assert DEFAULT_BATCH["MLP1"] == 128  # §VI-B

    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigError):
            build_network("VGG16")

    def test_custom_batch(self):
        net = build_network("ResNet18", batch=16)
        assert net.batch == 16


class TestParameterCounts:
    """Trainable parameter counts versus the published architectures
    (conv + fc weights; BN folded by BNFF)."""

    def test_resnet18(self):
        net = build_network("ResNet18")
        assert net.total_weights == pytest.approx(11.68e6, rel=0.01)

    def test_resnet50(self):
        net = build_network("ResNet50")
        assert net.total_weights == pytest.approx(25.5e6, rel=0.02)

    def test_mobilenet_v2(self):
        net = build_network("MobileNet")
        assert net.total_weights == pytest.approx(3.4e6, rel=0.05)

    def test_alphago_zero(self):
        # Stem + 38 res convs (0.59M each) + heads ~ 22.8M.
        net = build_network("AlphaGoZero")
        assert net.total_weights == pytest.approx(22.8e6, rel=0.02)

    def test_mlp1(self):
        net = build_network("MLP1")
        expected = (
            784 * 2048 + 2048 + 2048 * 2048 + 2048
            + 2048 * 2048 + 2048 + 2048 * 10 + 10
        )
        assert net.total_weights == expected


class TestBlocks:
    def test_resnet18_blocks_match_fig9(self):
        net = build_network("ResNet18")
        assert net.block_labels == (
            "Block0", "Block1", "Block2", "Block3", "Block4", "FC",
        )

    def test_mlp_blocks_match_fig9(self):
        net = build_network("MLP1")
        assert net.block_labels == ("Input", "H1", "H2", "Output")

    def test_alphago_blocks_match_fig9(self):
        net = build_network("AlphaGoZero")
        assert net.block_labels == ("Conv", "Residual", "Policy", "Head")

    def test_block_lookup(self):
        net = build_network("ResNet18")
        assert all(
            l.block == "Block4" for l in net.block("Block4")
        )

    def test_unknown_block_rejected(self):
        net = build_network("ResNet18")
        with pytest.raises(ConfigError):
            net.block("Block9")


class TestGraphInvariants:
    @pytest.mark.parametrize("name", PAPER_NETWORKS)
    def test_layer_names_unique(self, name):
        net = build_network(name)
        names = [l.name for l in net.layers]
        assert len(set(names)) == len(names)

    @pytest.mark.parametrize("name", PAPER_NETWORKS)
    def test_activations_chain(self, name):
        """Each layer's input matches its predecessor's output (except
        across residual/projection branches, which fan out)."""
        net = build_network(name)
        # At minimum the first layer consumes the network input and all
        # counts are positive.
        assert all(l.in_activations > 0 for l in net.layers)
        assert all(l.out_activations > 0 for l in net.layers)

    @pytest.mark.parametrize("name", PAPER_NETWORKS)
    def test_trainable_layers_have_gemms(self, name):
        net = build_network(name)
        for layer in net.trainable_layers():
            assert layer.gemms is not None

    def test_resnet18_macs_match_published(self):
        # ~1.82 GMAC per 224x224 image.
        net = build_network("ResNet18", batch=1)
        assert net.total_fwd_macs() == pytest.approx(1.82e9, rel=0.05)

    def test_resnet50_macs_match_published(self):
        net = build_network("ResNet50", batch=1)
        assert net.total_fwd_macs() == pytest.approx(4.1e9, rel=0.05)

    def test_mobilenet_macs_match_published(self):
        net = build_network("MobileNet", batch=1)
        assert net.total_fwd_macs() == pytest.approx(0.3e9, rel=0.1)

    def test_duplicate_layer_names_rejected(self):
        layer = linear_layer("same", "B", 8, 8, 1)
        with pytest.raises(ConfigError):
            NetworkGraph(name="bad", layers=(layer, layer), batch=1)

    def test_summary_mentions_name(self):
        net = build_network("ResNet18")
        assert "ResNet18" in net.summary()

    def test_weight_activation_ratio_rises_with_depth(self):
        """The Fig. 13 premise: late conv layers have higher w/a."""
        net = build_network("ResNet18")
        early = net.block("Block1")[0]
        late = [l for l in net.block("Block4") if l.is_trainable][-1]
        assert late.weight_activation_ratio(32) > (
            10 * early.weight_activation_ratio(32)
        )
