"""Unit-conversion helper tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_bytes_to_mb_uses_decimal_megabytes():
    assert units.bytes_to_mb(50_000_000) == 50.0


def test_bytes_to_gb():
    assert units.bytes_to_gb(17_100_000_000) == pytest.approx(17.1)


def test_gbps():
    assert units.gbps(17e9, 1.0) == pytest.approx(17.0)


def test_gbps_rejects_zero_time():
    with pytest.raises(ValueError):
        units.gbps(1.0, 0.0)


def test_ns_roundtrip():
    assert units.s_to_ns(units.ns_to_s(123.0)) == pytest.approx(123.0)


def test_geomean_known_value():
    assert units.geomean([1.0, 4.0]) == pytest.approx(2.0)


def test_geomean_single_value():
    assert units.geomean([3.7]) == pytest.approx(3.7)


def test_geomean_rejects_empty():
    with pytest.raises(ValueError):
        units.geomean([])


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.geomean([1.0, 0.0])


@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
def test_geomean_between_min_and_max(values):
    g = units.geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


def test_ceil_div_exact():
    assert units.ceil_div(8, 4) == 2


def test_ceil_div_rounds_up():
    assert units.ceil_div(9, 4) == 3


def test_ceil_div_zero_numerator():
    assert units.ceil_div(0, 4) == 0


def test_ceil_div_rejects_nonpositive_divisor():
    with pytest.raises(ValueError):
        units.ceil_div(4, 0)


@given(st.integers(0, 10**9), st.integers(1, 10**6))
def test_ceil_div_matches_math(a, b):
    assert units.ceil_div(a, b) == math.ceil(a / b)


@pytest.mark.parametrize("n", [1, 2, 4, 64, 4096])
def test_is_pow2_true(n):
    assert units.is_pow2(n)


@pytest.mark.parametrize("n", [0, -2, 3, 12, 100])
def test_is_pow2_false(n):
    assert not units.is_pow2(n)
