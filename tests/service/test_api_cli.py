"""Service API surface and the ``python -m repro.service`` CLI."""

import json

import pytest

from repro.service.__main__ import main
from repro.service.cache import ResultCache
from repro.service.spec import SimJobSpec

CHEAP = {
    "network": "MLP1",
    "columns_per_stripe": 8,
    "designs": ["Baseline", "GradPIM-BD"],
}


class TestCLI:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "job_file" in capsys.readouterr().out

    def test_job_list_emits_json(self, tmp_path, capsys):
        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps({"jobs": [CHEAP]}))
        assert main([str(job_file), "--summary-only"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_jobs"] == 1
        assert payload["n_failures"] == 0
        job = payload["jobs"][0]
        assert job["status"] == "ok"
        assert job["speedups"]["GradPIM-BD"]["overall"] > 1.0
        assert "result" not in job  # --summary-only

    def test_sweep_file_with_disk_cache(self, tmp_path, capsys):
        job_file = tmp_path / "sweep.json"
        job_file.write_text(
            json.dumps(
                {
                    "sweep": {
                        "base": CHEAP,
                        "axes": {"batch": [64, 128]},
                    }
                }
            )
        )
        cache_dir = tmp_path / "cache"
        args = [
            str(job_file), "--summary-only",
            "--cache-dir", str(cache_dir),
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache_hit_fraction"] == 0.0
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cache_hit_fraction"] == 1.0

        def strip(rows):  # provenance differs; numbers must not
            return [
                {k: v for k, v in r.items() if k != "from_cache"}
                for r in rows
            ]

        assert strip(second["table"]) == strip(first["table"])

    def test_output_file(self, tmp_path, capsys):
        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps({"jobs": [CHEAP]}))
        out_file = tmp_path / "results.json"
        assert main(
            [str(job_file), "--summary-only", "-o", str(out_file)]
        ) == 0
        assert json.loads(out_file.read_text())["n_jobs"] == 1

    def test_bad_job_file_exits_2(self, tmp_path, capsys):
        job_file = tmp_path / "bad.json"
        job_file.write_text('{"jobs": [], "sweep": {}}')
        assert main([str(job_file)]) == 2

    def test_missing_file_exits_2(self, tmp_path):
        assert main([str(tmp_path / "nope.json")]) == 2

    def test_failing_job_exits_1(self, tmp_path, capsys, monkeypatch):
        from repro.service import pool

        monkeypatch.setattr(
            pool,
            "execute_spec",
            lambda s: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps({"jobs": [CHEAP]}))
        assert main([str(job_file), "--summary-only"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_failures"] == 1

    def test_bad_jobs_value_exits_2(self, tmp_path, capsys):
        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps({"jobs": [CHEAP]}))
        assert main([str(job_file), "--jobs", "0"]) == 2


class TestSubmitEnvelope:
    def test_to_dict_shapes(self):
        from repro.service.api import submit

        spec = SimJobSpec.from_dict(CHEAP)
        result = submit(spec, cache=ResultCache())
        payload = result.to_dict()
        assert payload["status"] == "ok"
        assert payload["spec"] == spec.to_dict()
        assert len(payload["key"]) == 64  # sha256 hex
        assert payload["result"]["network"] == "MLP1"
        summary = payload["speedups"]["GradPIM-BD"]
        assert summary["overall"] > 1.0

    def test_no_cache_mode_reexecutes(self, monkeypatch):
        from repro.service import api, pool

        calls = []
        real = pool.execute_spec

        def counting(s):
            calls.append(s)
            return real(s)

        monkeypatch.setattr(pool, "execute_spec", counting)
        spec = SimJobSpec.from_dict(CHEAP)
        api.submit(spec, cache=None)
        api.submit(spec, cache=None)
        assert len(calls) == 2


class TestNoValidateFlag:
    def test_no_validate_overrides_every_job(self, tmp_path, capsys):
        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps({"jobs": [CHEAP]}))
        assert main(
            [str(job_file), "--summary-only", "--no-validate"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        (job,) = payload["jobs"]
        assert job["spec"]["validate"] is False
        assert job["status"] == "ok"

    def test_no_validate_caches_separately(self, tmp_path, capsys):
        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps({"jobs": [CHEAP]}))
        cache_dir = tmp_path / "cache"
        args = [str(job_file), "--summary-only",
                f"--cache-dir={cache_dir}"]
        assert main(args) == 0
        capsys.readouterr()
        # An unvalidated run of the same jobs is a cache miss.
        assert main(args + ["--no-validate"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["misses"] == 1
