"""Sweep expansion and campaign aggregation."""

import pytest

from repro.errors import ConfigError
from repro.service.cache import ResultCache
from repro.service.sweep import SweepResult, expand_grid, run_sweep
from repro.system.design import DesignPoint

BASE = {
    "network": "MLP1",
    "columns_per_stripe": 8,
    "designs": ["Baseline", "GradPIM-BD"],
}


class TestExpandGrid:
    def test_cartesian_product_in_axis_order(self):
        specs = expand_grid(
            BASE,
            {"timing": ["DDR4-2133", "HBM-like"], "batch": [16, 32]},
        )
        assert len(specs) == 4
        assert [(s.timing, s.batch) for s in specs] == [
            ("DDR4-2133", 16),
            ("DDR4-2133", 32),
            ("HBM-like", 16),
            ("HBM-like", 32),
        ]

    def test_axis_overrides_base(self):
        (spec,) = expand_grid(
            {**BASE, "precision": "8/32"}, {"precision": ["32/32"]}
        )
        assert spec.precision == "32/32"

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep axis"):
            expand_grid(BASE, {"fidelity": ["high"]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="no values"):
            expand_grid(BASE, {"batch": []})

    def test_bad_combination_fails_at_expansion(self):
        with pytest.raises(ConfigError, match="unknown precision"):
            expand_grid(BASE, {"precision": ["8/32", "7/32"]})


class TestRunSweep:
    @pytest.fixture(scope="class")
    def cache(self):
        return ResultCache()

    @pytest.fixture(scope="class")
    def sweep(self, cache):
        return run_sweep(
            BASE,
            {"timing": ["DDR4-2133", "HBM-like"], "batch": [64, 128]},
            cache=cache,
        )

    def test_all_jobs_succeed(self, sweep):
        assert len(sweep.jobs) == 4
        assert not sweep.failures
        assert sweep.cache_hit_fraction == 0.0

    def test_table_rows_carry_axes_and_speedups(self, sweep):
        rows = sweep.table()
        assert len(rows) == 4
        for row in rows:
            assert row["timing"] in ("DDR4-2133", "HBM-like")
            assert row["batch"] in (64, 128)
            assert row["overall:GradPIM-BD"] > 1.0
            assert row["update:GradPIM-BD"] > 1.0

    def test_geomean_aggregation(self, sweep):
        gm = sweep.geomean_overall(DesignPoint.GRADPIM_BUFFERED)
        speedups = sweep.speedups(DesignPoint.GRADPIM_BUFFERED)
        assert min(speedups) <= gm <= max(speedups)

    def test_repeat_served_from_cache(self, sweep, cache):
        again = run_sweep(
            BASE,
            {"timing": ["DDR4-2133", "HBM-like"], "batch": [64, 128]},
            cache=cache,
        )
        assert again.cache_hit_fraction >= 0.9  # acceptance criterion
        for a, b in zip(sweep.jobs, again.jobs):
            assert a.result.to_dict() == b.result.to_dict()

    def test_to_dict_is_json_shaped(self, sweep):
        import json

        payload = sweep.to_dict()
        assert payload["n_jobs"] == 4
        assert json.loads(json.dumps(payload))  # serializable

    def test_geomean_without_design_raises(self, sweep):
        with pytest.raises(ConfigError, match="no successful job"):
            sweep.geomean_overall(DesignPoint.AOS)

    def test_failures_surface_in_table(self):
        result = SweepResult(axes={}, jobs=[])
        assert result.table() == []
        assert result.cache_hit_fraction == 0.0
