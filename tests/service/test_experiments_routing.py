"""Experiments route through the service: caching + identical output."""

import pytest

from repro.dram.timing import TimingParams, DDR4_2133
from repro.experiments.common import ExperimentContext
from repro.experiments.fig9 import render_fig9, run_fig9
from repro.service import pool
from repro.service.cache import ResultCache


@pytest.fixture()
def ctx():
    return ExperimentContext(
        columns_per_stripe=8, networks=("MLP1",)
    )


class TestServiceRouting:
    def test_fig9_runs_through_submit_many(self, ctx, monkeypatch):
        calls = []
        real = pool.execute_spec

        def counting(spec):
            calls.append(spec)
            return real(spec)

        monkeypatch.setattr(pool, "execute_spec", counting)
        run_fig9(ctx)
        assert [s.network for s in calls] == ["MLP1"]

    def test_repeat_figure_served_from_cache(self, ctx, monkeypatch):
        run_fig9(ctx)
        monkeypatch.setattr(
            pool,
            "execute_spec",
            lambda s: (_ for _ in ()).throw(
                AssertionError("cache should have served this")
            ),
        )
        run_fig9(ctx)  # identical context: every job is a cache hit
        assert ctx.cache.stats()["hits"] >= 1

    def test_pooled_figure_output_byte_identical(self, ctx):
        serial = render_fig9(run_fig9(ctx))
        pooled_ctx = ExperimentContext(
            columns_per_stripe=8,
            networks=("MLP1",),
            jobs=2,
            cache=ResultCache(),
        )
        assert render_fig9(run_fig9(pooled_ctx)) == serial

    def test_unspeccable_timing_falls_back_to_direct(self, monkeypatch):
        import dataclasses

        custom = dataclasses.replace(DDR4_2133, tCL=18)
        assert isinstance(custom, TimingParams)
        ctx = ExperimentContext(
            timing=custom, columns_per_stripe=8, networks=("MLP1",)
        )
        # The service must never see this request ...
        monkeypatch.setattr(
            pool,
            "execute_spec",
            lambda s: (_ for _ in ()).throw(
                AssertionError("unspeccable config reached the service")
            ),
        )
        results = ctx.network_results()
        # ... yet the direct path still answers.
        assert results["MLP1"].network == "MLP1"

    def test_job_spec_reflects_context(self, ctx):
        spec = ctx.job_spec("MLP1")
        assert spec.columns_per_stripe == 8
        assert spec.optimizer == "momentum_sgd"
        assert spec.timing == "DDR4-2133"
        assert spec.geometry == {}  # default geometry: no overrides

    def test_batch_override_round_trips(self, ctx):
        results = ctx.network_results(batch=16)
        assert results["MLP1"].batch == 16
