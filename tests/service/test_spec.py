"""SimJobSpec: round-trip, hashing, validation (property-based)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.service.spec import SimJobSpec
from repro.system.design import DESIGN_ORDER

NETWORKS = ("ResNet18", "ResNet50", "MobileNet", "MLP1", "AlphaGoZero")
PRECISIONS = ("8/32", "16/32", "8/16", "32/32")
TIMINGS = ("DDR4-2133", "DDR4-3200", "HBM-like")
ALL_DESIGNS = tuple(d.value for d in DESIGN_ORDER)

_eta = st.floats(1e-4, 0.5, allow_nan=False, allow_infinity=False)
_alpha = st.floats(0.0, 0.99, allow_nan=False, allow_infinity=False)

optimizers = st.one_of(
    st.tuples(st.just("sgd"), st.fixed_dictionaries({"eta": _eta})),
    st.tuples(
        st.just("momentum_sgd"),
        st.fixed_dictionaries(
            {"eta": _eta, "alpha": _alpha},
            optional={"weight_decay": st.floats(0.0, 0.01)},
        ),
    ),
    st.tuples(
        st.just("adam"),
        st.fixed_dictionaries({"eta": _eta, "beta1": _alpha}),
    ),
)

design_sets = st.sets(
    st.sampled_from(ALL_DESIGNS), min_size=0, max_size=5
).map(lambda s: ("Baseline",) + tuple(s))


@st.composite
def specs(draw):
    name, params = draw(optimizers)
    return SimJobSpec(
        network=draw(st.sampled_from(NETWORKS)),
        batch=draw(st.one_of(st.none(), st.integers(1, 256))),
        optimizer=name,
        optimizer_params=params,
        precision=draw(st.sampled_from(PRECISIONS)),
        timing=draw(st.sampled_from(TIMINGS)),
        geometry=draw(
            st.fixed_dictionaries(
                {}, optional={"ranks": st.sampled_from((2, 4, 8))}
            )
        ),
        npu=draw(
            st.fixed_dictionaries(
                {},
                optional={"array_rows": st.sampled_from((64, 128, 256))},
            )
        ),
        designs=draw(design_sets),
        columns_per_stripe=draw(st.sampled_from((8, 16, 32))),
        channels=draw(st.one_of(st.none(), st.sampled_from((1, 2, 4, 8)))),
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(specs())
    def test_dict_round_trip_lossless(self, spec):
        assert SimJobSpec.from_dict(spec.to_dict()) == spec
        assert SimJobSpec.from_dict(spec.to_dict()).to_dict() == (
            spec.to_dict()
        )

    @settings(max_examples=60, deadline=None)
    @given(specs())
    def test_json_round_trip_lossless(self, spec):
        assert SimJobSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=60, deadline=None)
    @given(specs())
    def test_hash_stable_across_round_trip(self, spec):
        assert (
            SimJobSpec.from_dict(spec.to_dict()).content_hash()
            == spec.content_hash()
        )


class TestHashing:
    @settings(max_examples=60, deadline=None)
    @given(specs(), st.randoms(use_true_random=False))
    def test_hash_key_order_insensitive(self, spec, rnd):
        d = spec.to_dict()
        shuffled_keys = list(d)
        rnd.shuffle(shuffled_keys)
        shuffled = {k: d[k] for k in shuffled_keys}
        assert (
            SimJobSpec.from_dict(shuffled).content_hash()
            == spec.content_hash()
        )

    @settings(max_examples=60, deadline=None)
    @given(specs(), st.randoms(use_true_random=False))
    def test_hash_design_order_insensitive(self, spec, rnd):
        d = spec.to_dict()
        designs = list(d["designs"])
        rnd.shuffle(designs)
        d["designs"] = designs
        assert (
            SimJobSpec.from_dict(d).content_hash() == spec.content_hash()
        )

    @settings(max_examples=60, deadline=None)
    @given(specs(), specs())
    def test_hash_collision_distinct(self, a, b):
        # Differing canonical content must produce differing hashes;
        # equal content must produce equal hashes.
        if a.canonical_json() == b.canonical_json():
            assert a.content_hash() == b.content_hash()
        else:
            assert a.content_hash() != b.content_hash()

    def test_explicit_defaults_equal_omitted_defaults(self):
        assert (
            SimJobSpec(network="MLP1").content_hash()
            == SimJobSpec(
                network="MLP1", precision="8/32", timing="DDR4-2133"
            ).content_hash()
        )


class TestValidation:
    def test_unknown_network(self):
        with pytest.raises(ConfigError, match="unknown network"):
            SimJobSpec(network="VGG16")

    def test_unknown_precision(self):
        with pytest.raises(ConfigError, match="unknown precision"):
            SimJobSpec(network="MLP1", precision="4/32")

    def test_unknown_timing(self):
        with pytest.raises(ConfigError, match="unknown timing"):
            SimJobSpec(network="MLP1", timing="DDR5-4800")

    def test_designs_must_include_baseline(self):
        with pytest.raises(ConfigError, match="baseline"):
            SimJobSpec(network="MLP1", designs=("GradPIM-BD",))

    def test_unknown_design(self):
        with pytest.raises(ConfigError, match="unknown design"):
            SimJobSpec(network="MLP1", designs=("Baseline", "GradPIM-XX"))

    def test_unknown_optimizer(self):
        with pytest.raises(ConfigError, match="unknown optimizer"):
            SimJobSpec(network="MLP1", optimizer="lion")

    def test_bad_hyperparameter_name(self):
        with pytest.raises(ConfigError, match="hyperparameters"):
            SimJobSpec(
                network="MLP1",
                optimizer="sgd",
                optimizer_params={"learning_rate": 0.1},
            )

    def test_bad_geometry_override(self):
        with pytest.raises(ConfigError, match="geometry"):
            SimJobSpec(network="MLP1", geometry={"lanes": 2})

    def test_unknown_dict_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown spec field"):
            SimJobSpec.from_dict({"network": "MLP1", "fidelity": "high"})

    def test_missing_network_rejected(self):
        with pytest.raises(ConfigError, match="network"):
            SimJobSpec.from_dict({"precision": "8/32"})

    def test_negative_batch_rejected(self):
        with pytest.raises(ConfigError, match="batch"):
            SimJobSpec(network="MLP1", batch=0)


class TestChannels:
    def test_ddr4_default_is_one_channel(self):
        assert SimJobSpec(network="MLP1").channels == 1

    def test_hbm_default_is_the_physical_stack(self):
        # Omitting channels on the HBM2 preset materializes the real
        # 8-channel stack — the substrate is no longer a single-bus
        # fake.
        spec = SimJobSpec(network="MLP1", timing="HBM-like")
        assert spec.channels == 8
        assert spec.resolve().geometry.channels == 8

    def test_explicit_channels_beat_the_preset(self):
        spec = SimJobSpec(network="MLP1", timing="HBM-like", channels=1)
        assert spec.channels == 1
        assert spec.resolve().geometry.channels == 1

    def test_geometry_override_folds_into_the_field(self):
        # Both spellings hash to one content address.
        a = SimJobSpec(network="MLP1", geometry={"channels": 4})
        b = SimJobSpec(network="MLP1", channels=4)
        assert a.channels == 4
        assert "channels" not in a.geometry
        assert a.content_hash() == b.content_hash()

    def test_conflicting_spellings_rejected(self):
        with pytest.raises(ConfigError, match="channels"):
            SimJobSpec(
                network="MLP1", channels=2, geometry={"channels": 4}
            )

    def test_agreeing_spellings_accepted(self):
        spec = SimJobSpec(
            network="MLP1", channels=4, geometry={"channels": 4}
        )
        assert spec.channels == 4

    def test_channel_count_changes_the_hash(self):
        assert (
            SimJobSpec(network="MLP1", channels=2).content_hash()
            != SimJobSpec(network="MLP1").content_hash()
        )

    def test_bad_channel_counts_rejected(self):
        with pytest.raises(ConfigError, match="channels"):
            SimJobSpec(network="MLP1", channels=0)
        with pytest.raises(ConfigError):
            SimJobSpec(network="MLP1", channels=3)  # pow2 via geometry


class TestResolve:
    def test_resolves_defaults(self):
        job = SimJobSpec(network="MLP1").resolve()
        assert job.batch == 128  # the MLP's zoo default
        assert job.optimizer.name == "momentum_sgd"
        assert job.timing.name == "DDR4-2133"
        assert len(job.designs) == 6

    def test_resolves_overrides(self):
        spec = SimJobSpec(
            network="ResNet18",
            batch=16,
            npu={"array_rows": 128},
            geometry={"ranks": 2},
        )
        job = spec.resolve()
        assert job.batch == 16
        assert job.npu.array_rows == 128
        assert job.geometry.ranks == 2

    def test_canonical_json_is_deterministic(self):
        spec = SimJobSpec(network="MLP1")
        assert spec.canonical_json() == spec.canonical_json()
        assert json.loads(spec.canonical_json()) == spec.to_dict()


class TestValidateFlag:
    def test_default_on_and_round_trips(self):
        spec = SimJobSpec(network="MLP1")
        assert spec.validate is True
        assert spec.to_dict()["validate"] is True
        off = SimJobSpec.from_dict({"network": "MLP1", "validate": False})
        assert off.validate is False
        assert SimJobSpec.from_dict(off.to_dict()) == off

    def test_validate_is_part_of_the_content_hash(self):
        on = SimJobSpec(network="MLP1")
        off = SimJobSpec(network="MLP1", validate=False)
        assert on.content_hash() != off.content_hash()

    def test_validate_must_be_boolean(self):
        with pytest.raises(ConfigError):
            SimJobSpec(network="MLP1", validate="yes")

    def test_resolve_carries_validate(self):
        assert SimJobSpec(network="MLP1").resolve().validate is True
        assert (
            SimJobSpec(network="MLP1", validate=False).resolve().validate
            is False
        )


class TestEngineField:
    def test_default_and_round_trip(self):
        spec = SimJobSpec(network="MLP1")
        assert spec.engine == "incremental"
        assert spec.to_dict()["engine"] == "incremental"
        periodic = SimJobSpec.from_dict(
            {"network": "MLP1", "engine": "periodic"}
        )
        assert periodic.engine == "periodic"
        assert SimJobSpec.from_dict(periodic.to_dict()) == periodic

    def test_engine_is_part_of_the_content_hash(self):
        default = SimJobSpec(network="MLP1")
        periodic = SimJobSpec(network="MLP1", engine="periodic")
        assert default.content_hash() != periodic.content_hash()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            SimJobSpec(network="MLP1", engine="warp-drive")

    def test_resolve_carries_engine(self):
        assert (
            SimJobSpec(network="MLP1", engine="periodic")
            .resolve()
            .engine
            == "periodic"
        )

    def test_engines_produce_identical_results(self):
        from repro.service.pool import clear_model_cache, execute_spec

        results = {}
        for engine in ("incremental", "periodic", "columnar"):
            clear_model_cache()
            spec = SimJobSpec(
                network="MLP1",
                columns_per_stripe=8,
                designs=("Baseline", "GradPIM-BD"),
                engine=engine,
            )
            results[engine] = execute_spec(spec).to_dict()
        assert results["incremental"] == results["periodic"]
        assert results["incremental"] == results["columnar"]
