"""Result cache: hit identity, LRU, disk persistence, versioning."""

import json

import pytest

from repro.service import api, pool
from repro.service.cache import ResultCache, cache_key
from repro.service.spec import SimJobSpec
from repro.system.design import DesignPoint
from repro.system.training import NetworkResult, PhaseTimes

CHEAP = dict(columns_per_stripe=8, designs=("Baseline", "GradPIM-BD"))


@pytest.fixture()
def spec():
    return SimJobSpec(network="MLP1", **CHEAP)


def _fake_result(tag: float) -> NetworkResult:
    return NetworkResult(
        network="MLP1",
        batch=128,
        precision="8/32",
        optimizer="momentum_sgd",
        blocks=(),
        totals={DesignPoint.BASELINE: PhaseTimes(fwd=tag)},
        profiles={},
    )


class TestMemoryLayer:
    def test_hit_returns_identical_object_without_simulating(
        self, spec, monkeypatch
    ):
        calls = []
        real = pool.execute_spec

        def counting(s):
            calls.append(s)
            return real(s)

        monkeypatch.setattr(pool, "execute_spec", counting)
        cache = ResultCache()
        first = api.submit(spec, cache=cache)
        second = api.submit(spec, cache=cache)
        assert len(calls) == 1  # the second run never hit the simulator
        assert second.from_cache and not first.from_cache
        assert second.result is first.result  # identical object
        assert cache.stats()["hits"] == 1

    def test_lru_evicts_oldest(self):
        cache = ResultCache(capacity=2)
        specs = [
            SimJobSpec(network="MLP1", batch=b, **CHEAP)
            for b in (16, 32, 64)
        ]
        for i, s in enumerate(specs):
            cache.put(s, _fake_result(float(i)))
        assert cache.get(specs[0]) is None  # evicted
        assert cache.get(specs[1]) is not None
        assert cache.get(specs[2]) is not None

    def test_lru_touch_on_get(self):
        cache = ResultCache(capacity=2)
        specs = [
            SimJobSpec(network="MLP1", batch=b, **CHEAP)
            for b in (16, 32, 64)
        ]
        cache.put(specs[0], _fake_result(0.0))
        cache.put(specs[1], _fake_result(1.0))
        cache.get(specs[0])  # refresh: specs[1] becomes the oldest
        cache.put(specs[2], _fake_result(2.0))
        assert cache.get(specs[0]) is not None
        assert cache.get(specs[1]) is None

    def test_capacity_zero_disables_memory(self, spec):
        cache = ResultCache(capacity=0)
        cache.put(spec, _fake_result(0.0))
        assert len(cache) == 0


class TestDiskLayer:
    def test_round_trip_across_cache_instances(self, tmp_path, spec):
        writer = ResultCache(directory=tmp_path)
        writer.put(spec, _fake_result(0.125))
        reader = ResultCache(directory=tmp_path)  # fresh memory layer
        result = reader.get(spec)
        assert result is not None
        assert result.totals[DesignPoint.BASELINE].fwd == 0.125
        assert reader.stats()["disk_hits"] == 1

    def test_served_without_invoking_simulator(
        self, tmp_path, spec, monkeypatch
    ):
        ResultCache(directory=tmp_path).put(spec, _fake_result(1.0))

        def explode(s):
            raise AssertionError("simulator must not run on a disk hit")

        monkeypatch.setattr(pool, "execute_spec", explode)
        out = api.submit(spec, cache=ResultCache(directory=tmp_path))
        assert out.ok and out.from_cache

    def test_stale_version_is_a_miss(self, tmp_path, spec):
        cache = ResultCache(directory=tmp_path)
        cache.put(spec, _fake_result(1.0))
        path = tmp_path / f"{cache_key(spec)}.json"
        payload = json.loads(path.read_text())
        payload["version"] = "0.0.0-old"
        path.write_text(json.dumps(payload))
        assert ResultCache(directory=tmp_path).get(spec) is None

    def test_corrupt_file_is_a_miss(self, tmp_path, spec):
        cache = ResultCache(directory=tmp_path)
        cache.put(spec, _fake_result(1.0))
        (tmp_path / f"{cache_key(spec)}.json").write_text("{not json")
        assert ResultCache(directory=tmp_path).get(spec) is None


class TestKeys:
    def test_key_depends_on_spec_content(self, spec):
        other = SimJobSpec(network="MLP1", batch=16, **CHEAP)
        assert cache_key(spec) != cache_key(other)

    def test_key_depends_on_code_version(self, spec):
        assert cache_key(spec, version="1.0.0") != cache_key(
            spec, version="2.0.0"
        )
