"""Worker pool: parallel == serial, error isolation, dedup."""

import pytest

from repro.service import api, pool
from repro.service.cache import ResultCache
from repro.service.pool import run_specs
from repro.service.spec import SimJobSpec

CHEAP = dict(columns_per_stripe=8, designs=("Baseline", "GradPIM-BD"))


@pytest.fixture(scope="module")
def specs():
    return [
        SimJobSpec(network="MLP1", batch=b, **CHEAP)
        for b in (16, 32, 64, 128)
    ]


class TestPoolMatchesSerial:
    def test_results_identical_spec_for_spec(self, specs):
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=4)
        assert [p["status"] for p in parallel] == ["ok"] * len(specs)
        for s, p in zip(serial, parallel):
            assert s["result"] == p["result"]  # exact float equality

    def test_submit_many_parallel_matches_serial(self, specs):
        serial = api.submit_many(specs, jobs=1, cache=ResultCache())
        parallel = api.submit_many(specs, jobs=2, cache=ResultCache())
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert s.result.to_dict() == p.result.to_dict()


class TestErrorIsolation:
    def test_one_failing_job_does_not_sink_the_batch(
        self, specs, monkeypatch
    ):
        real = pool.execute_spec

        def flaky(spec):
            if spec.batch == 32:
                raise RuntimeError("injected fault")
            return real(spec)

        monkeypatch.setattr(pool, "execute_spec", flaky)
        results = api.submit_many(specs, jobs=1, cache=ResultCache())
        assert [r.ok for r in results] == [True, False, True, True]
        assert "injected fault" in results[1].error
        assert results[1].result is None

    def test_worker_payload_carries_traceback(self, monkeypatch):
        def boom(spec):
            raise ValueError("bad geometry")

        monkeypatch.setattr(pool, "execute_spec", boom)
        (payload,) = run_specs(
            [SimJobSpec(network="MLP1", **CHEAP)], jobs=1
        )
        assert payload["status"] == "error"
        assert "bad geometry" in payload["error"]
        assert "Traceback" in payload["traceback"]


class TestBatchSemantics:
    def test_duplicates_executed_once(self, monkeypatch):
        calls = []
        real = pool.execute_spec

        def counting(s):
            calls.append(s)
            return real(s)

        monkeypatch.setattr(pool, "execute_spec", counting)
        spec = SimJobSpec(network="MLP1", **CHEAP)
        results = api.submit_many(
            [spec, spec, spec], jobs=1, cache=ResultCache()
        )
        assert len(calls) == 1
        assert all(r.ok for r in results)
        assert (
            results[0].result.to_dict() == results[2].result.to_dict()
        )

    def test_order_preserved(self, specs):
        results = api.submit_many(specs, jobs=2, cache=ResultCache())
        assert [r.spec.batch for r in results] == [16, 32, 64, 128]

    def test_model_cache_shared_within_process(self, specs):
        before = len(pool._MODELS)
        run_specs(specs, jobs=1)
        # All four jobs share one substrate configuration.
        assert len(pool._MODELS) <= before + 1

    def test_hyperparameters_do_not_share_profiles(self):
        # UpdatePhaseModel caches profiles by optimizer *name*, so the
        # shared-model key must separate differing hyperparameters:
        # weight_decay=0 drops a term from the compiled command stream.
        with_decay = SimJobSpec(
            network="MLP1",
            optimizer_params={
                "eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4,
            },
            **CHEAP,
        )
        without_decay = SimJobSpec(
            network="MLP1",
            optimizer_params={
                "eta": 0.01, "alpha": 0.9, "weight_decay": 0.0,
            },
            **CHEAP,
        )
        a = pool.execute_spec(with_decay)
        b = pool.execute_spec(without_decay)
        from repro.system.design import DesignPoint

        # The baseline stream touches the same arrays either way; the
        # compiled PIM kernel gains a scaled-load term with decay.
        pim = DesignPoint.GRADPIM_BUFFERED
        assert (
            a.profiles[pim].seconds_per_param
            != b.profiles[pim].seconds_per_param
        )
        # And re-running in the same process reproduces both exactly.
        fresh = run_specs([without_decay, with_decay], jobs=1)
        assert (
            fresh[0]["result"]["profiles"]["GradPIM-BD"]
            == b.to_dict()["profiles"]["GradPIM-BD"]
        )
        assert (
            fresh[1]["result"]["profiles"]["GradPIM-BD"]
            == a.to_dict()["profiles"]["GradPIM-BD"]
        )


class TestSubstrateMemoization:
    def test_hyperparam_variants_share_one_model(self):
        # The substrate key is hardware-only; profiles are memoized
        # inside the model by full optimizer identity, so two jobs
        # differing only in hyperparameters share one UpdatePhaseModel.
        pool.clear_model_cache()
        a = SimJobSpec(
            network="MLP1",
            optimizer_params={"eta": 0.01, "alpha": 0.9,
                              "weight_decay": 1e-4},
            **CHEAP,
        )
        b = SimJobSpec(
            network="MLP1",
            optimizer_params={"eta": 0.01, "alpha": 0.9,
                              "weight_decay": 0.0},
            **CHEAP,
        )
        run_specs([a, b], jobs=1)
        assert len(pool._MODELS) == 1
        (model,) = pool._MODELS.values()
        # Both optimizer identities are separately cached inside it.
        designs = {key[0] for key in model._cache}
        identities = {key[1] for key in model._cache}
        assert len(identities) == 2
        assert len(designs) == 2  # Baseline + GradPIM-BD

    def test_profiles_computed_once_across_jobs(self, monkeypatch):
        from repro.dram.scheduler import CommandScheduler

        pool.clear_model_cache()
        runs = []
        real = CommandScheduler.run

        def counting(self, commands, dependents=None, **kwargs):
            runs.append(len(commands))
            return real(self, commands, dependents, **kwargs)

        monkeypatch.setattr(CommandScheduler, "run", counting)
        specs = [
            SimJobSpec(network="MLP1", batch=b, **CHEAP)
            for b in (16, 32, 64)
        ]
        run_specs(specs, jobs=1)
        # One schedule per design in the set, not per job.
        assert len(runs) == len(CHEAP["designs"])

    def test_validate_flag_reaches_the_model(self):
        pool.clear_model_cache()
        spec = SimJobSpec(network="MLP1", validate=False, **CHEAP)
        result = pool.execute_spec(spec)
        assert result is not None
        (key,) = pool._MODELS
        assert pool._MODELS[key].validate is False
        # Validated and unvalidated substrates do not share models.
        pool.execute_spec(SimJobSpec(network="MLP1", **CHEAP))
        assert len(pool._MODELS) == 2

    def test_no_validate_matches_validated_results(self):
        pool.clear_model_cache()
        on = pool.execute_spec(SimJobSpec(network="MLP1", **CHEAP))
        off = pool.execute_spec(
            SimJobSpec(network="MLP1", validate=False, **CHEAP)
        )
        assert on.to_dict() == off.to_dict()
