"""Worker pool: parallel == serial, error isolation, dedup."""

import pytest

from repro.service import api, pool
from repro.service.cache import ResultCache
from repro.service.pool import run_specs
from repro.service.spec import SimJobSpec

CHEAP = dict(columns_per_stripe=8, designs=("Baseline", "GradPIM-BD"))


@pytest.fixture(scope="module")
def specs():
    return [
        SimJobSpec(network="MLP1", batch=b, **CHEAP)
        for b in (16, 32, 64, 128)
    ]


class TestPoolMatchesSerial:
    def test_results_identical_spec_for_spec(self, specs):
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=4)
        assert [p["status"] for p in parallel] == ["ok"] * len(specs)
        for s, p in zip(serial, parallel):
            assert s["result"] == p["result"]  # exact float equality

    def test_submit_many_parallel_matches_serial(self, specs):
        serial = api.submit_many(specs, jobs=1, cache=ResultCache())
        parallel = api.submit_many(specs, jobs=2, cache=ResultCache())
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert s.result.to_dict() == p.result.to_dict()


class TestErrorIsolation:
    def test_one_failing_job_does_not_sink_the_batch(
        self, specs, monkeypatch
    ):
        real = pool.execute_spec

        def flaky(spec):
            if spec.batch == 32:
                raise RuntimeError("injected fault")
            return real(spec)

        monkeypatch.setattr(pool, "execute_spec", flaky)
        results = api.submit_many(specs, jobs=1, cache=ResultCache())
        assert [r.ok for r in results] == [True, False, True, True]
        assert "injected fault" in results[1].error
        assert results[1].result is None

    def test_worker_payload_carries_traceback(self, monkeypatch):
        def boom(spec):
            raise ValueError("bad geometry")

        monkeypatch.setattr(pool, "execute_spec", boom)
        (payload,) = run_specs(
            [SimJobSpec(network="MLP1", **CHEAP)], jobs=1
        )
        assert payload["status"] == "error"
        assert "bad geometry" in payload["error"]
        assert "Traceback" in payload["traceback"]


class TestBatchSemantics:
    def test_duplicates_executed_once(self, monkeypatch):
        calls = []
        real = pool.execute_spec

        def counting(s):
            calls.append(s)
            return real(s)

        monkeypatch.setattr(pool, "execute_spec", counting)
        spec = SimJobSpec(network="MLP1", **CHEAP)
        results = api.submit_many(
            [spec, spec, spec], jobs=1, cache=ResultCache()
        )
        assert len(calls) == 1
        assert all(r.ok for r in results)
        assert (
            results[0].result.to_dict() == results[2].result.to_dict()
        )

    def test_order_preserved(self, specs):
        results = api.submit_many(specs, jobs=2, cache=ResultCache())
        assert [r.spec.batch for r in results] == [16, 32, 64, 128]

    def test_model_cache_shared_within_process(self, specs):
        before = len(pool._MODELS)
        run_specs(specs, jobs=1)
        # All four jobs share one substrate configuration.
        assert len(pool._MODELS) <= before + 1

    def test_hyperparameters_do_not_share_profiles(self):
        # UpdatePhaseModel caches profiles by optimizer *name*, so the
        # shared-model key must separate differing hyperparameters:
        # weight_decay=0 drops a term from the compiled command stream.
        with_decay = SimJobSpec(
            network="MLP1",
            optimizer_params={
                "eta": 0.01, "alpha": 0.9, "weight_decay": 1e-4,
            },
            **CHEAP,
        )
        without_decay = SimJobSpec(
            network="MLP1",
            optimizer_params={
                "eta": 0.01, "alpha": 0.9, "weight_decay": 0.0,
            },
            **CHEAP,
        )
        a = pool.execute_spec(with_decay)
        b = pool.execute_spec(without_decay)
        from repro.system.design import DesignPoint

        # The baseline stream touches the same arrays either way; the
        # compiled PIM kernel gains a scaled-load term with decay.
        pim = DesignPoint.GRADPIM_BUFFERED
        assert (
            a.profiles[pim].seconds_per_param
            != b.profiles[pim].seconds_per_param
        )
        # And re-running in the same process reproduces both exactly.
        fresh = run_specs([without_decay, with_decay], jobs=1)
        assert (
            fresh[0]["result"]["profiles"]["GradPIM-BD"]
            == b.to_dict()["profiles"]["GradPIM-BD"]
        )
        assert (
            fresh[1]["result"]["profiles"]["GradPIM-BD"]
            == a.to_dict()["profiles"]["GradPIM-BD"]
        )
