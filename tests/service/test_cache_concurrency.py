"""Concurrent ResultCache access: racing writers/readers, corruption.

The HTTP gateway serves one shared :class:`ResultCache` from many
request threads plus the dispatcher thread, so the cache must tolerate
two writers on one key, a reader racing a writer, and crash debris
(partial/corrupt files) — all degrading to a miss, never an exception.
"""

import json
import multiprocessing
import threading

import pytest

from repro.service.__main__ import main
from repro.service.api import DEFAULT_CACHE, DEFAULT_CACHE_MAX_ENTRIES
from repro.service.cache import (
    DEFAULT_MAX_ENTRIES,
    ResultCache,
    cache_key,
)
from repro.service.spec import SimJobSpec
from repro.system.design import DesignPoint
from repro.system.training import NetworkResult, PhaseTimes

CHEAP = dict(columns_per_stripe=8, designs=("Baseline", "GradPIM-BD"))


@pytest.fixture()
def spec():
    return SimJobSpec(network="MLP1", **CHEAP)


def _result(tag: float) -> NetworkResult:
    return NetworkResult(
        network="MLP1",
        batch=128,
        precision="8/32",
        optimizer="momentum_sgd",
        blocks=(),
        totals={DesignPoint.BASELINE: PhaseTimes(fwd=tag)},
        profiles={},
    )


def _run_threads(targets):
    errors = []

    def wrap(fn):
        def body():
            try:
                fn()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        return body

    threads = [threading.Thread(target=wrap(t)) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors, errors


class TestConcurrentDisk:
    def test_two_writers_same_key(self, tmp_path, spec):
        """Concurrent writers of one key leave a complete file."""
        cache = ResultCache(directory=tmp_path)
        barrier = threading.Barrier(2)

        def writer(tag):
            def body():
                barrier.wait()
                for _ in range(50):
                    cache.put(spec, _result(tag))

            return body

        _run_threads([writer(1.0), writer(2.0)])
        fresh = ResultCache(directory=tmp_path)
        result = fresh.get(spec)
        assert result is not None  # a full, parseable file survives
        assert result.totals[DesignPoint.BASELINE].fwd in (1.0, 2.0)
        # No temp-file debris is left behind (or mistaken for entries).
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_reader_racing_writer(self, tmp_path, spec):
        """A racing reader sees a hit or a miss — never an exception."""
        writer_cache = ResultCache(directory=tmp_path)
        outcomes = []
        stop = threading.Event()

        def write():
            for _ in range(100):
                writer_cache.put(spec, _result(3.0))
            stop.set()

        def read():
            while not stop.is_set():
                # Fresh memory layer each probe: force the disk path.
                got = ResultCache(directory=tmp_path).get(spec)
                outcomes.append(got)

        _run_threads([write, read])
        assert all(
            o is None or o.totals[DesignPoint.BASELINE].fwd == 3.0
            for o in outcomes
        )
        assert ResultCache(directory=tmp_path).get(spec) is not None

    def test_partial_file_is_a_miss(self, tmp_path, spec):
        """A truncated write (crash debris) degrades to a miss."""
        cache = ResultCache(directory=tmp_path)
        cache.put(spec, _result(1.0))
        path = tmp_path / f"{cache_key(spec)}.json"
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        assert ResultCache(directory=tmp_path).get(spec) is None

    def test_concurrent_memory_layer(self, spec):
        """Many threads hammering one in-memory LRU stay consistent."""
        cache = ResultCache(max_entries=4)
        specs = [
            SimJobSpec(network="MLP1", batch=b, **CHEAP)
            for b in (16, 32, 64, 128)
        ]

        def worker(index):
            def body():
                for _ in range(200):
                    cache.put(specs[index], _result(float(index)))
                    got = cache.get(specs[index])
                    assert got is None or (
                        got.totals[DesignPoint.BASELINE].fwd
                        == float(index)
                    )

            return body

        _run_threads([worker(i) for i in range(4)])
        assert len(cache) <= 4


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="cross-process cache sharing requires the fork start method",
)
class TestCrossProcessSharing:
    """Cluster shards are separate *processes* pointing independent
    ResultCache instances at one shared root — the arrangement that
    makes failover re-execution byte-identical and usually free. The
    atomic tmp+replace write discipline must hold across processes,
    not just threads."""

    def test_processes_racing_put_and_lookup(self, tmp_path, spec):
        ctx = multiprocessing.get_context("fork")
        key = cache_key(spec)

        def writer(tag):
            cache = ResultCache(directory=tmp_path)
            for _ in range(50):
                cache.put(spec, _result(tag))

        writers = [
            ctx.Process(target=writer, args=(tag,)) for tag in (1.0, 2.0)
        ]
        for proc in writers:
            proc.start()
        # A third instance (this process) races lookups against both
        # writers: every probe is a hit or a miss, never an exception
        # or a torn read.
        seen = []
        while any(proc.is_alive() for proc in writers):
            got = ResultCache(directory=tmp_path).lookup(key)
            if got is not None:
                seen.append(got.totals[DesignPoint.BASELINE].fwd)
        for proc in writers:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        assert all(tag in (1.0, 2.0) for tag in seen)

        # After the dust settles: one complete entry, no temp debris.
        final = ResultCache(directory=tmp_path).get(spec)
        assert final is not None
        assert final.totals[DesignPoint.BASELINE].fwd in (1.0, 2.0)
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_second_process_reads_what_the_first_wrote(
        self, tmp_path, spec
    ):
        ctx = multiprocessing.get_context("fork")
        ResultCache(directory=tmp_path).put(spec, _result(7.0))

        def reader():
            got = ResultCache(directory=tmp_path).get(spec)
            assert got is not None
            assert got.totals[DesignPoint.BASELINE].fwd == 7.0

        proc = ctx.Process(target=reader)
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 0


class TestBoundedDefaultCache:
    def test_default_cache_is_bounded(self):
        assert DEFAULT_CACHE.max_entries == DEFAULT_CACHE_MAX_ENTRIES
        assert DEFAULT_CACHE_MAX_ENTRIES == DEFAULT_MAX_ENTRIES
        assert ResultCache().max_entries == DEFAULT_MAX_ENTRIES

    def test_env_override_parsing(self, monkeypatch):
        from repro.service.api import _env_cache_max_entries

        monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES", raising=False)
        assert _env_cache_max_entries() == DEFAULT_MAX_ENTRIES
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "17")
        assert _env_cache_max_entries() == 17
        # Malformed values warn and fall back — they must never take
        # down `import repro.service` (this runs at module scope).
        for bad in ("1k", "", "-3"):
            monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", bad)
            with pytest.warns(UserWarning, match="REPRO_CACHE_MAX"):
                assert _env_cache_max_entries() == DEFAULT_MAX_ENTRIES

    def test_capacity_alias(self):
        assert ResultCache(capacity=3).max_entries == 3
        assert ResultCache(max_entries=3).capacity == 3
        with pytest.raises(ValueError):
            ResultCache(max_entries=1, capacity=2)
        with pytest.raises(ValueError):
            ResultCache(max_entries=-1)


class TestStatsSurface:
    def test_lookup_by_key(self, tmp_path, spec):
        cache = ResultCache(directory=tmp_path)
        key = cache.put(spec, _result(1.0))
        assert cache.lookup(key) is not None
        assert cache.lookup("0" * 64) is None

    def test_disk_stats_counts_stale(self, tmp_path, spec):
        cache = ResultCache(directory=tmp_path)
        cache.put(spec, _result(1.0))
        other = SimJobSpec(network="MLP1", batch=16, **CHEAP)
        cache.put(other, _result(2.0))
        path = tmp_path / f"{cache_key(other)}.json"
        payload = json.loads(path.read_text())
        payload["version"] = "0.0.0-old"
        path.write_text(json.dumps(payload))
        stats = cache.disk_stats()
        assert stats["disk_entries"] == 2
        assert stats["stale_entries"] == 1
        assert stats["disk_bytes"] > 0

    def test_disk_stats_without_directory(self):
        assert ResultCache().disk_stats() == {
            "disk_entries": 0,
            "disk_bytes": 0,
            "stale_entries": 0,
        }

    def test_cache_stats_cli(self, tmp_path, spec, capsys):
        ResultCache(directory=tmp_path).put(spec, _result(1.0))
        assert main(["cache-stats", "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["disk_entries"] == 1
        assert payload["stale_entries"] == 0
        assert payload["max_entries"] == DEFAULT_MAX_ENTRIES
        assert payload["directory"] == str(tmp_path)
        # Process-local counters would always read zero in a one-shot
        # CLI, so the subcommand must not print them at all.
        assert "hits" not in payload and "misses" not in payload

    def test_cache_stats_cli_without_dir(self, capsys):
        assert main(["cache-stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["disk_entries"] == 0
