"""Shared fixtures for the HTTP gateway tests.

Servers bind port 0 (OS-assigned) so parallel test runs never collide;
specs use the cheapest MLP1 configuration so a cold execution is tens
of milliseconds.
"""

from __future__ import annotations

import threading

import pytest

from repro.server import ServerClient, ServerConfig, create_server

#: The cheapest full job: ~50 ms cold, sub-ms from a warm model.
CHEAP_SPEC = {
    "network": "MLP1",
    "columns_per_stripe": 8,
    "designs": ["Baseline", "GradPIM-BD"],
}


def cheap_spec(batch: int = 128) -> dict:
    return dict(CHEAP_SPEC, batch=batch)


def wait_until(predicate, timeout=10.0, poll=0.005):
    """Poll until ``predicate()`` is true (tests of async behaviour)."""
    import time

    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("condition never became true")
        time.sleep(poll)


@pytest.fixture()
def live_server():
    """Factory: start background servers, stop them all at teardown."""
    servers = []

    def start(**overrides) -> tuple:
        config = ServerConfig(**{"port": 0, **overrides})
        server = create_server(config)
        server.start_background()
        servers.append(server)
        return server, ServerClient(server.url, max_retries=0)

    yield start
    for server in servers:
        server.stop()


@pytest.fixture()
def gated_executor(monkeypatch):
    """Block every execution on an event; returns (release, calls).

    Patches ``repro.service.pool.execute_spec`` (the in-process
    execution choke point the dispatcher funnels through) with a gate,
    so tests can hold the dispatcher mid-execution and observe
    coalescing/backpressure deterministically.
    """
    from repro.service import pool

    release = threading.Event()
    calls: list = []
    real = pool.execute_spec

    def gated(spec):
        calls.append(spec)
        assert release.wait(timeout=30), "gate never released"
        return real(spec)

    monkeypatch.setattr(pool, "execute_spec", gated)
    return release, calls
