"""Live-server endpoint semantics: envelopes, errors, backpressure."""

import json
import time
import urllib.request

import pytest

from tests.server.conftest import cheap_spec, wait_until

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


class TestBasicEndpoints:
    def test_healthz(self, live_server):
        _, client = live_server()
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert set(health["jobs"]) == {
            "queued", "running", "done", "error",
            "timed_out", "quarantined",
        }
        assert "faults" in health

    def test_unknown_route_404(self, live_server):
        _, client = live_server()
        status, _, _ = client._request("GET", "/v1/nope")
        assert status == 404

    def test_wrong_method_405(self, live_server):
        _, client = live_server()
        status, _, _ = client._request("GET", "/v1/jobs")
        assert status == 405

    def test_unknown_job_404(self, live_server):
        _, client = live_server()
        status, _, _ = client._request("GET", "/v1/jobs/job-99999999")
        assert status == 404

    def test_uncached_result_404(self, live_server):
        _, client = live_server()
        status, _, _ = client._request("GET", f"/v1/results/{'0' * 64}")
        assert status == 404


class TestPostJobs:
    def test_submit_and_poll(self, live_server):
        _, client = live_server()
        [envelope] = client.submit(cheap_spec())
        assert envelope["status"] in ("queued", "running", "done")
        assert envelope["disposition"] == "queued"
        [finished] = client.wait_for([envelope["id"]])
        assert finished["status"] == "done"
        assert finished["spec_hash"] == envelope["spec_hash"]
        assert finished["speedups"]["GradPIM-BD"]["overall"] > 1.0
        assert "result" in finished

    def test_wait_blocks_until_done(self, live_server):
        _, client = live_server()
        [envelope] = client.submit(cheap_spec(batch=16), wait=30)
        assert envelope["status"] == "done"
        assert envelope["result"]["network"] == "MLP1"

    def test_second_submit_is_cached(self, live_server):
        _, client = live_server()
        client.submit(cheap_spec(batch=32), wait=30)
        [envelope] = client.submit(cheap_spec(batch=32), wait=30)
        assert envelope["disposition"] == "cached"
        assert envelope["from_cache"] is True

    def test_batch_submission(self, live_server):
        _, client = live_server()
        envelopes = client.submit(
            [cheap_spec(batch=b) for b in (16, 32, 64)], wait=30
        )
        assert len(envelopes) == 3
        assert {e["status"] for e in envelopes} == {"done"}
        assert len({e["spec_hash"] for e in envelopes}) == 3

    def test_result_endpoint_after_execution(self, live_server):
        _, client = live_server()
        [envelope] = client.submit(cheap_spec(batch=48), wait=30)
        payload = client.result(envelope["spec_hash"])
        assert payload["spec_hash"] == envelope["spec_hash"]
        assert payload["result"] == envelope["result"]

    def test_summary_query_omits_result(self, live_server):
        _, client = live_server()
        [envelope] = client.submit(cheap_spec(batch=24), wait=30)
        summary = client.job(envelope["id"], summary=True)
        assert "result" not in summary
        assert summary["speedups"]["GradPIM-BD"]["overall"] > 1.0
        # Falsy spellings keep the payload (?summary=0 != ?summary=1).
        status, _, body = client._request(
            "GET", f"/v1/jobs/{envelope['id']}?summary=0"
        )
        assert status == 200 and "result" in json.loads(body)

    def test_bad_spec_400(self, live_server):
        _, client = live_server()
        status, _, body = client._request(
            "POST", "/v1/jobs", {"network": "NoSuchNet"}
        )
        assert status == 400
        assert "NoSuchNet" in json.loads(body)["error"]

    def test_bad_json_400(self, live_server):
        server, _ = live_server()
        request = urllib.request.Request(
            f"{server.url}/v1/jobs",
            data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10)
        assert exc.value.code == 400

    def test_error_responses_close_keepalive_connections(
        self, live_server
    ):
        """An error path that never drained the body must not leave it
        on the socket to be parsed as the next keep-alive request."""
        import http.client

        server, _ = live_server()
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST",
                "/v1/nope",
                body=json.dumps({"network": "MLP1"}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()
        # A fresh connection still works fine.
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_keepalive_survives_successful_requests(self, live_server):
        """Happy-path requests keep the connection reusable."""
        import http.client

        server, _ = live_server()
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for _ in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_empty_batch_400(self, live_server):
        _, client = live_server()
        status, _, _ = client._request("POST", "/v1/jobs", {"jobs": []})
        assert status == 400

    def test_oversize_batch_400(self, live_server):
        _, client = live_server(max_batch=2)
        status, _, body = client._request(
            "POST",
            "/v1/jobs",
            {"jobs": [cheap_spec(batch=b) for b in (16, 32, 64)]},
        )
        assert status == 400
        assert "max_batch" in json.loads(body)["error"]

    def test_error_job_lifecycle(self, live_server, monkeypatch):
        from repro.service import pool

        def explode(spec):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(pool, "execute_spec", explode)
        _, client = live_server()
        [envelope] = client.submit(cheap_spec(batch=56), wait=30)
        assert envelope["status"] == "error"
        assert "synthetic failure" in envelope["error"]


class TestBackpressure:
    def test_queue_full_503_with_retry_after(
        self, live_server, gated_executor
    ):
        release, calls = gated_executor
        server, client = live_server(
            queue_depth=1, retry_after_seconds=2.5
        )
        # First job: dequeued by the dispatcher, blocked mid-execution.
        client.submit(cheap_spec(batch=16))
        wait_until(lambda: len(calls) == 1)
        # Second job fills the (depth-1) queue; third must bounce.
        client.submit(cheap_spec(batch=32))
        status, headers, body = client._request(
            "POST", "/v1/jobs", cheap_spec(batch=64)
        )
        assert status == 503
        assert headers.get("Retry-After") == "2.5"
        assert "queue full" in json.loads(body)["error"]
        assert (
            server.metrics.counter_value("rejected_total") == 1
        )
        release.set()

    def test_batch_partially_accepted(
        self, live_server, gated_executor
    ):
        release, calls = gated_executor
        server, client = live_server(queue_depth=1)
        client.submit(cheap_spec(batch=16))
        wait_until(lambda: len(calls) == 1)
        status, headers, body = client._request(
            "POST",
            "/v1/jobs",
            {"jobs": [cheap_spec(batch=32), cheap_spec(batch=64)]},
        )
        assert status == 503
        payload = json.loads(body)
        assert payload["accepted"] == 1
        assert payload["rejected"] == 1
        assert "Retry-After" in headers
        release.set()
        # The accepted job still runs to completion.
        [finished] = client.wait_for([payload["jobs"][0]["id"]])
        assert finished["status"] == "done"


class TestJobStoreBounds:
    def test_finished_jobs_evicted(self, live_server):
        _, client = live_server(max_finished_jobs=2)
        ids = []
        for batch in (16, 32, 64):
            [envelope] = client.submit(cheap_spec(batch=batch), wait=30)
            ids.append(envelope["id"])
        status, _, _ = client._request("GET", f"/v1/jobs/{ids[0]}")
        assert status == 404  # evicted by the two later finishers
        assert client.job(ids[2])["status"] == "done"


class TestMetricsEndpoint:
    def test_latencies_after_traffic(self, live_server):
        _, client = live_server()
        client.submit(cheap_spec(batch=16), wait=30)
        client.healthz()
        summary = client.latency_summary()
        post = summary["POST /v1/jobs"]
        assert post["count"] >= 1
        assert post["p50"] > 0 and post["p95"] > 0 and post["p99"] > 0
        assert post["p50"] <= post["p95"] <= post["p99"]
        assert summary["GET /healthz"]["count"] >= 1

    def test_counters_and_gauges_exposed(self, live_server):
        from repro.server.metrics import parse_prometheus

        _, client = live_server()
        client.submit(cheap_spec(batch=16), wait=30)
        client.submit(cheap_spec(batch=16), wait=30)  # cached
        parsed = parse_prometheus(client.metrics_text())
        assert parsed["repro_server_executions_total"][""] == 1.0
        assert parsed["repro_server_cache_hits_total"] == {"": 1.0}
        # One cold job = exactly one counted miss (admission counts it;
        # the execution itself must not re-probe and double it).
        assert parsed["repro_server_cache_misses"][""] == 1.0
        assert parsed["repro_server_cache_hits"][""] == 1.0
        assert "repro_server_queue_depth" in parsed
        assert "repro_server_uptime_seconds" in parsed
        assert "repro_server_cache_entries" in parsed
        status_counts = parsed["repro_server_requests_total"]
        assert any('status="200"' in k for k in status_counts)


class TestReadiness:
    """Liveness (/healthz) and readiness (/readyz) are split: a
    draining or not-yet-started gateway is alive but must not be sent
    new work (the cluster supervisor routes on exactly this signal)."""

    def _get(self, client, path):
        status, _, text = client._request("GET", path)
        return status, json.loads(text)

    def test_readyz_ok_while_serving(self, live_server):
        _, client = live_server()
        status, body = self._get(client, "/readyz")
        assert status == 200
        assert body["ready"] is True
        assert body["draining"] is False
        assert "queue_depth" in body

    def test_readyz_503_while_draining_healthz_still_200(
        self, live_server
    ):
        server, client = live_server()
        server.dispatcher.draining = True
        status, body = self._get(client, "/readyz")
        assert status == 503
        assert body["ready"] is False
        assert body["reason"] == "draining"
        # Liveness is unaffected: the process is healthy, just not
        # accepting new work.
        assert client.healthz()["status"] == "ok"

    def test_readyz_405_on_post(self, live_server):
        _, client = live_server()
        status, _, _ = client._request("POST", "/readyz", body={})
        assert status == 405

    def test_not_ready_before_dispatcher_starts(self):
        from repro.server import ServerConfig, create_server

        server = create_server(ServerConfig(port=0))
        try:
            assert not server.dispatcher.is_ready()
        finally:
            server.server_close()

    def test_not_ready_after_stop(self, live_server):
        server, _ = live_server()
        assert server.dispatcher.is_ready()
        server.stop()
        assert server.dispatcher.draining
        assert not server.dispatcher.is_ready()
