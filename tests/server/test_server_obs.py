"""End-to-end server observability: engine reports, /metrics, traces."""

from __future__ import annotations

import pytest

from repro.obs.metrics import parse_prometheus, set_default_registry
from repro.obs.trace import (
    disable_tracing,
    enable_tracing,
    validate_chrome_trace,
)
from tests.server.conftest import cheap_spec

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(autouse=True)
def _clean_obs_state():
    set_default_registry(None)
    disable_tracing()
    yield
    set_default_registry(None)
    disable_tracing()


def periodic_spec(batch: int = 128, stripe: int = 9) -> dict:
    # Odd stripe widths no other server test touches: the pool's
    # process-local model cache is keyed by substrate (not batch), so
    # each test picks its own width to keep the flight recorder from
    # being memoized away by an earlier test's profiles.
    return dict(
        cheap_spec(batch), engine="periodic", columns_per_stripe=stripe
    )


def test_engine_report_reaches_the_job_envelope(live_server):
    _, client = live_server()
    [envelope] = client.submit(periodic_spec(), wait=30)
    assert envelope["status"] == "done"
    report = envelope.get("engine_report")
    assert report is not None and report["engine"] == "periodic"
    assert report.get("fast_path", 0) + report.get("fallback", 0) > 0
    # Polling the job again re-serves the same report.
    again = client.job(envelope["id"])
    assert again["engine_report"] == report


def test_metrics_expose_engine_counter_families(live_server):
    _, client = live_server()
    [envelope] = client.submit(periodic_spec(batch=64, stripe=11), wait=30)
    assert envelope["status"] == "done"
    families = parse_prometheus(client.metrics_text())
    engine_families = {
        name
        for name in families
        if name.startswith("repro_server_engine_")
    }
    # The job either extrapolated (fast path) or fell back with a
    # classified reason — both surface as engine counters.
    assert engine_families, f"no engine families in {sorted(families)}"
    if "repro_server_engine_fallback_total" in families:
        labels = families["repro_server_engine_fallback_total"]
        assert all("reason=" in label for label in labels)
    total = sum(
        sum(series.values())
        for name, series in families.items()
        if name
        in (
            "repro_server_engine_fast_path_total",
            "repro_server_engine_fallback_total",
        )
    )
    assert total >= 1
    # The scheduling-path family tags every schedule the engines ran.
    assert "repro_server_engine_scheduling_path_total" in families


def test_metrics_append_the_process_global_registry(live_server):
    """Families recorded on the default registry (``repro_*``) ride
    the same /metrics response as the server's own families."""
    from repro.obs.metrics import default_registry

    _, client = live_server()
    client.healthz()  # at least one completed request on the books
    default_registry().inc("sideband_total", {"origin": "test"})
    families = parse_prometheus(client.metrics_text())
    assert families["repro_sideband_total"]['{origin="test"}'] == 1
    assert "repro_server_requests_total" in families


def test_traced_server_run_covers_the_dispatch_path(live_server):
    tracer = enable_tracing()
    _, client = live_server()
    [envelope] = client.submit(periodic_spec(batch=32, stripe=13), wait=30)
    assert envelope["status"] == "done"
    names = tracer.span_names()
    for expected in (
        "server.submit",
        "server.cache_lookup",
        "server.dispatch",
        "server.cache_write",
        "pool.execute",
    ):
        assert expected in names, f"missing span {expected}"
    assert validate_chrome_trace(tracer.to_chrome_trace()) == []
