"""ServerConfig validation and the ``repro-server`` CLI."""

import pytest

from repro.errors import ConfigError
from repro.server import ServerConfig, create_server
from repro.server.__main__ import main
from repro.server.app import ReproServer
from repro.service.cache import DEFAULT_MAX_ENTRIES


class TestServerConfig:
    def test_defaults(self):
        config = ServerConfig()
        assert config.queue_depth == 64
        assert config.workers == 1
        assert config.cache_max_entries == DEFAULT_MAX_ENTRIES

    @pytest.mark.parametrize(
        "overrides",
        [
            {"port": -1},
            {"queue_depth": 0},
            {"workers": 0},
            {"retry_after_seconds": 0},
            {"max_coalesced": 0},
            {"cache_max_entries": -1},
            {"max_batch": 0},
            {"max_finished_jobs": 0},
            {"max_wait_seconds": 0},
        ],
    )
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ConfigError):
            ServerConfig(**overrides)

    def test_cache_limit_flows_into_server_cache(self):
        server = create_server(
            ServerConfig(port=0, cache_max_entries=7)
        )
        try:
            assert server.cache.max_entries == 7
        finally:
            server.server_close()

    def test_cache_dir_flows_into_server_cache(self, tmp_path):
        server = create_server(
            ServerConfig(port=0, cache_dir=str(tmp_path / "cache"))
        )
        try:
            assert str(server.cache.directory).endswith("cache")
        finally:
            server.server_close()


class TestCLI:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--queue-depth" in out and "--url-file" in out

    def test_bad_config_exits_2(self, capsys):
        assert main(["--queue-depth", "0"]) == 2
        assert "cannot start server" in capsys.readouterr().err

    def test_url_file_written_on_ephemeral_port(
        self, tmp_path, monkeypatch, capsys
    ):
        served = []
        monkeypatch.setattr(
            ReproServer,
            "serve_forever",
            lambda self, poll_interval=0.5: served.append(self.url),
        )
        url_file = tmp_path / "server.url"
        assert main(["--port", "0", "--url-file", str(url_file)]) == 0
        url = url_file.read_text().strip()
        assert url.startswith("http://127.0.0.1:")
        assert int(url.rsplit(":", 1)[1]) > 0
        assert served == [url]
        assert url in capsys.readouterr().err
