"""In-flight request coalescing — the gateway's scaling mechanic.

The acceptance bar: M concurrent POSTs of one spec must execute the
backend exactly once (one ``pool.execute_spec`` invocation, one cache
write), and every response must carry the identical result and spec
hash.
"""

import threading
import time

from repro.server import ServerClient
from tests.server.conftest import cheap_spec, wait_until


class TestCoalescing:
    def test_concurrent_identical_posts_execute_once(
        self, live_server, gated_executor
    ):
        """M threads POST the same spec; the pool runs it exactly once."""
        release, calls = gated_executor
        server, _ = live_server()
        M = 8
        spec = cheap_spec(batch=96)
        envelopes: list = [None] * M
        errors: list = []

        def post(i):
            try:
                client = ServerClient(server.url)
                envelopes[i] = client.submit(spec)[0]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=post, args=(i,)) for i in range(M)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        assert all(e is not None for e in envelopes)

        # Exactly one execution entered the backend; it is still gated,
        # so every request necessarily either started it or attached.
        wait_until(lambda: len(calls) == 1)
        dispositions = sorted(e["disposition"] for e in envelopes)
        assert dispositions.count("queued") == 1
        assert dispositions.count("coalesced") == M - 1
        release.set()

        client = ServerClient(server.url)
        finished = client.wait_for([e["id"] for e in envelopes])
        # Backend executed exactly once in total.
        assert len(calls) == 1
        assert server.metrics.counter_value("executions_total") == 1
        assert server.metrics.counter_value("coalesced_total") == M - 1
        # All M responses: done, identical spec hash, identical result.
        assert {job["status"] for job in finished} == {"done"}
        assert len({job["spec_hash"] for job in finished}) == 1
        reference = finished[0]["result"]
        assert all(job["result"] == reference for job in finished)
        # One cache write: the shared result is the cached object.
        assert server.cache.stats()["entries"] == 1
        coalesced_flags = [job["coalesced"] for job in finished]
        assert coalesced_flags.count(True) == M - 1

    def test_coalesced_after_completion_hits_cache(
        self, live_server
    ):
        """Once the execution finishes, later posts are cache hits."""
        _, client = live_server()
        spec = cheap_spec(batch=112)
        [first] = client.submit(spec, wait=30)
        assert first["disposition"] == "queued"
        [second] = client.submit(spec, wait=30)
        assert second["disposition"] == "cached"
        assert second["result"] == first["result"]

    def test_distinct_specs_do_not_coalesce(
        self, live_server, gated_executor
    ):
        release, calls = gated_executor
        server, client = live_server()
        client.submit(cheap_spec(batch=16))
        client.submit(cheap_spec(batch=32))
        wait_until(lambda: len(calls) >= 1)
        assert server.metrics.counter_value("coalesced_total") == 0
        release.set()

    def test_attachment_flood_hits_backpressure(
        self, live_server, gated_executor
    ):
        """Coalescing is admission too: attachments on one in-flight
        execution are bounded, and the overflow gets a 503."""
        release, calls = gated_executor
        server, client = live_server(max_coalesced=2)
        spec = cheap_spec(batch=16)
        client.submit(spec)  # the execution (1 attached job)
        wait_until(lambda: len(calls) == 1)
        client.submit(spec)  # attachment #2: at the bound
        status, headers, _ = client._request("POST", "/v1/jobs", spec)
        assert status == 503
        assert "Retry-After" in headers
        assert server.metrics.counter_value("rejected_total") == 1
        release.set()

    def test_stop_fails_executions_queued_behind_sentinel(
        self, live_server, gated_executor
    ):
        """Work admitted while the dispatcher is stopping is failed
        explicitly, never stranded in 'queued'."""
        release, calls = gated_executor
        server, client = live_server()
        [first] = client.submit(cheap_spec(batch=16))
        wait_until(lambda: len(calls) == 1)  # dispatcher gated
        stopper = threading.Thread(target=server.dispatcher.stop)
        stopper.start()
        # The stop sentinel is now queued; this job lands behind it.
        wait_until(lambda: server.dispatcher.queue_depth() >= 1)
        [late] = client.submit(cheap_spec(batch=32))
        release.set()
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        assert client.job(first["id"])["status"] == "done"
        envelope = client.job(late["id"])
        assert envelope["status"] == "error"
        assert "shutting down" in envelope["error"]
