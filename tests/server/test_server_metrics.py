"""Streaming histograms and the Prometheus registry."""

import random
import threading

import pytest

from repro.server.metrics import (
    MetricsRegistry,
    StreamingHistogram,
    parse_prometheus,
)


class TestStreamingHistogram:
    def test_empty_quantiles_are_zero(self):
        h = StreamingHistogram()
        assert h.quantile(0.5) == 0.0
        assert h.count == 0 and h.sum == 0.0

    def test_empty_histogram_never_invents_values(self):
        # Every quantile of an empty histogram is the 0.0 sentinel —
        # never an edge of the configured [lo, hi) range.
        h = StreamingHistogram(lo=0.5, hi=2.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 0.0
        snap = h.snapshot()
        assert snap == {
            "count": 0, "sum": 0.0, "min": None, "max": None,
            "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_overflow_quantile_reports_observed_max(self):
        """p99 landing in the open-ended overflow bucket must not
        interpolate across [hi, max): the seed fabricated latencies
        nothing ever exhibited (e.g. ~333 s from data that was only
        ever 0.01 s or 500 s)."""
        h = StreamingHistogram(lo=1e-3, hi=1.0)
        for _ in range(97):
            h.record(0.01)
        for _ in range(3):
            h.record(500.0)
        assert h.quantile(0.99) == pytest.approx(500.0)
        assert h.quantile(1.0) == pytest.approx(500.0)
        # Quantiles below the overflow share stay inside [lo, hi).
        assert 1e-3 <= h.quantile(0.5) < 1.0

    def test_overflow_only_data(self):
        h = StreamingHistogram(lo=1e-3, hi=1.0)
        h.record(500.0)
        for q in (0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(500.0)

    def test_single_bucket_per_decade_degenerate(self):
        h = StreamingHistogram(lo=1e-3, hi=1.0, buckets_per_decade=1)
        for v in (0.002, 0.02, 0.2):
            h.record(v)
        # Quantiles stay within the observed range and monotone even
        # with decade-wide buckets.
        qs = [h.quantile(q / 10) for q in range(11)]
        assert qs == sorted(qs)
        assert all(0.002 <= q <= 0.2 for q in qs)
        assert h.quantile(1.0) == pytest.approx(0.2)

    def test_single_value(self):
        h = StreamingHistogram()
        h.record(0.0123)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.0123, rel=1e-9)
        assert h.count == 1
        assert h.sum == pytest.approx(0.0123)

    def test_uniform_accuracy(self):
        h = StreamingHistogram()
        rng = random.Random(20210215)
        values = sorted(rng.uniform(1e-4, 1.0) for _ in range(20000))
        for v in values:
            h.record(v)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = values[int(q * len(values)) - 1]
            assert h.quantile(q) == pytest.approx(exact, rel=0.15)

    def test_quantiles_monotonic(self):
        h = StreamingHistogram()
        rng = random.Random(7)
        for _ in range(5000):
            h.record(rng.lognormvariate(-5, 2))
        qs = [h.quantile(q / 100) for q in range(0, 101, 5)]
        assert qs == sorted(qs)

    def test_out_of_range_values(self):
        h = StreamingHistogram(lo=1e-3, hi=1.0)
        h.record(1e-9)  # underflow bucket
        h.record(50.0)  # overflow bucket
        h.record(-1.0)  # clamped to zero
        assert h.count == 3
        assert 0.0 <= h.quantile(0.01) <= 1e-3
        assert h.quantile(1.0) == pytest.approx(50.0)

    def test_thread_safety(self):
        h = StreamingHistogram()

        def hammer():
            for i in range(10000):
                h.record(1e-4 * (1 + i % 100))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 80000

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            StreamingHistogram(lo=1.0, hi=0.1)
        with pytest.raises(ValueError):
            StreamingHistogram(buckets_per_decade=0)
        with pytest.raises(ValueError):
            StreamingHistogram().quantile(1.5)

    def test_snapshot_shape(self):
        h = StreamingHistogram()
        h.record(0.01)
        snap = h.snapshot()
        assert set(snap) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        }

    def test_exact_accumulators(self):
        # min/max/mean are exact (accumulator-tracked), not bucket
        # approximations — a value recorded once comes back verbatim.
        h = StreamingHistogram()
        for v in (0.004, 0.9, 0.017):
            h.record(v)
        assert h.min == 0.004
        assert h.max == 0.9
        assert abs(h.mean - (0.004 + 0.9 + 0.017) / 3) < 1e-12
        assert h.stddev > 0.0
        snap = h.snapshot()
        assert snap["min"] == 0.004
        assert snap["max"] == 0.9


class TestMetricsRegistry:
    def test_counters_with_labels(self):
        r = MetricsRegistry()
        r.inc("requests_total", {"endpoint": "GET /healthz"})
        r.inc("requests_total", {"endpoint": "GET /healthz"})
        r.inc("requests_total", {"endpoint": "POST /v1/jobs"})
        assert (
            r.counter_value(
                "requests_total", {"endpoint": "GET /healthz"}
            )
            == 2
        )
        assert r.counter_value("requests_total", {"endpoint": "nope"}) == 0

    def test_render_round_trips_through_parser(self):
        r = MetricsRegistry()
        r.inc("requests_total", {"endpoint": "GET /healthz"}, value=3)
        r.gauge("queue_depth", lambda: 7)
        for v in (0.001, 0.002, 0.004):
            r.observe(
                "request_seconds", v, {"endpoint": "GET /healthz"}
            )
        text = r.render()
        assert "# TYPE repro_server_requests_total counter" in text
        assert "# TYPE repro_server_queue_depth gauge" in text
        assert "# TYPE repro_server_request_seconds summary" in text
        parsed = parse_prometheus(text)
        assert (
            parsed["repro_server_requests_total"][
                '{endpoint="GET /healthz"}'
            ]
            == 3.0
        )
        assert parsed["repro_server_queue_depth"][""] == 7.0
        assert (
            parsed["repro_server_request_seconds_count"][
                '{endpoint="GET /healthz"}'
            ]
            == 3.0
        )
        quantile_series = {
            labels: value
            for labels, value in parsed[
                "repro_server_request_seconds"
            ].items()
        }
        assert len(quantile_series) == 3  # p50/p95/p99
        assert all(v > 0 for v in quantile_series.values())

    def test_gauge_errors_render_nan(self):
        r = MetricsRegistry()

        def boom():
            raise RuntimeError("sensor gone")

        r.gauge("broken", boom)
        assert "repro_server_broken NaN" in r.render()

    def test_histograms_family_listing(self):
        r = MetricsRegistry()
        r.observe("request_seconds", 0.1, {"endpoint": "a"})
        r.observe("request_seconds", 0.1, {"endpoint": "b"})
        r.observe("other_seconds", 0.1)
        families = dict(
            (labels.get("endpoint"), hist)
            for labels, hist in r.histograms("request_seconds")
        )
        assert set(families) == {"a", "b"}
