"""The urllib client: retries, error surfacing, telemetry digestion."""

import json
import random
import threading
import time
from email.utils import formatdate
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.server import ServerClient, ServerError
from repro.server.client import parse_retry_after
from repro.service.spec import SimJobSpec
from tests.server.conftest import cheap_spec, wait_until


class TestParseRetryAfter:
    """RFC-7231 allows both delta-seconds and HTTP-date; the client
    must digest both (the seed crashed with ValueError on dates)."""

    def test_delta_seconds(self):
        assert parse_retry_after("2") == 2.0
        assert parse_retry_after("0.25") == 0.25

    def test_negative_delta_clamps_to_zero(self):
        assert parse_retry_after("-3") == 0.0

    def test_http_date_relative_to_now(self):
        now = 1_700_000_000.0
        header = formatdate(now + 7, usegmt=True)
        assert parse_retry_after(header, now=now) == pytest.approx(
            7.0, abs=1.0  # formatdate truncates to whole seconds
        )

    def test_http_date_in_the_past_clamps_to_zero(self):
        now = 1_700_000_000.0
        header = formatdate(now - 3600, usegmt=True)
        assert parse_retry_after(header, now=now) == 0.0

    def test_garbage_falls_back_to_default(self):
        assert parse_retry_after("soon", default=1.5) == 1.5
        assert parse_retry_after("", default=2.0) == 2.0
        assert parse_retry_after("Wed, 99 Foo", default=0.5) == 0.5

    def test_missing_header_uses_default(self):
        assert parse_retry_after(None, default=4.0) == 4.0

    def test_client_caps_the_sleep(self):
        client = ServerClient(
            "http://127.0.0.1:1", retry_after_cap=5.0
        )
        assert client.retry_after_cap == 5.0
        assert (
            min(parse_retry_after("86400"), client.retry_after_cap)
            == 5.0
        )


class TestSubmitShapes:
    def test_accepts_simjobspec_objects(self, live_server):
        _, client = live_server()
        spec = SimJobSpec.from_dict(cheap_spec(batch=16))
        [envelope] = client.submit(spec, wait=30)
        assert envelope["status"] == "done"
        assert envelope["spec_hash"]

    def test_accepts_mixed_batch(self, live_server):
        _, client = live_server()
        batch = [
            SimJobSpec.from_dict(cheap_spec(batch=16)),
            cheap_spec(batch=32),
        ]
        envelopes = client.submit(batch, wait=30)
        assert [e["status"] for e in envelopes] == ["done", "done"]

    def test_server_error_carries_status(self, live_server):
        _, client = live_server()
        with pytest.raises(ServerError) as exc:
            client.submit({"network": "NoSuchNet"})
        assert exc.value.status == 400
        assert "NoSuchNet" in str(exc.value)

    def test_wait_for_timeout(self, live_server, gated_executor):
        release, calls = gated_executor
        _, client = live_server()
        [envelope] = client.submit(cheap_spec(batch=16))
        with pytest.raises(TimeoutError):
            client.wait_for([envelope["id"]], timeout=0.2)
        release.set()
        [finished] = client.wait_for([envelope["id"]])
        assert finished["status"] == "done"


class TestBackpressureRetries:
    def test_retry_resubmits_only_unaccepted_specs(
        self, live_server, gated_executor
    ):
        """A 503 mid-batch is absorbed: the client sleeps the advertised
        Retry-After and resubmits the remainder until all are in."""
        release, calls = gated_executor
        server, _ = live_server(
            queue_depth=1, retry_after_seconds=0.05
        )
        patient = ServerClient(server.url, max_retries=20)
        # Occupy the dispatcher so the queue backs up immediately.
        patient.submit(cheap_spec(batch=16))
        wait_until(lambda: len(calls) == 1)
        releaser = threading.Timer(0.3, release.set)
        releaser.start()
        try:
            envelopes = patient.submit(
                [cheap_spec(batch=b) for b in (32, 64, 96)]
            )
            assert len(envelopes) == 3
            finished = patient.wait_for([e["id"] for e in envelopes])
            assert {job["status"] for job in finished} == {"done"}
        finally:
            releaser.cancel()
            release.set()

    def test_retries_exhausted_raises(
        self, live_server, gated_executor
    ):
        release, calls = gated_executor
        server, _ = live_server(
            queue_depth=1, retry_after_seconds=0.01
        )
        impatient = ServerClient(server.url, max_retries=1)
        impatient.submit(cheap_spec(batch=16))
        wait_until(lambda: len(calls) == 1)
        impatient.submit(cheap_spec(batch=32))  # fills the queue
        with pytest.raises(ServerError) as exc:
            impatient.submit(cheap_spec(batch=64))
        assert exc.value.status == 503
        release.set()

    def test_partial_acceptance_envelopes_survive_the_error(
        self, live_server, gated_executor
    ):
        """Specs the server accepted before the 503 remain pollable via
        ServerError.envelopes — the caller need not resubmit them."""
        release, calls = gated_executor
        server, _ = live_server(queue_depth=1)
        client = ServerClient(server.url, max_retries=0)
        client.submit(cheap_spec(batch=16))
        wait_until(lambda: len(calls) == 1)
        with pytest.raises(ServerError) as exc:
            client.submit(
                [cheap_spec(batch=32), cheap_spec(batch=64)]
            )
        assert exc.value.status == 503
        assert len(exc.value.envelopes) == 1
        accepted_id = exc.value.envelopes[0]["id"]
        release.set()
        [finished] = client.wait_for([accepted_id])
        assert finished["status"] == "done"


class TestTelemetryDigest:
    def test_latency_summary_per_endpoint(self, live_server):
        _, client = live_server()
        client.submit(cheap_spec(batch=16), wait=30)
        for _ in range(3):
            client.healthz()
        summary = client.latency_summary()
        health = summary["GET /healthz"]
        assert health["count"] == 3
        assert health["sum"] > 0
        assert set(health) >= {"p50", "p95", "p99", "count", "sum"}


class _FlakySubmitHandler(BaseHTTPRequestHandler):
    """Stub gateway: the first ``server.inject_503`` POSTs get a 503
    with Retry-After, then every submit succeeds instantly."""

    def do_POST(self):
        length = int(self.headers.get("Content-Length", 0))
        body = json.loads(self.rfile.read(length) or b"{}")
        if self.server.inject_503 > 0:
            self.server.inject_503 -= 1
            payload = json.dumps(
                {"error": "queue full", "accepted": 0, "jobs": []}
            ).encode()
            self.send_response(503)
            self.send_header("Retry-After", "0.1")
        else:
            payload = json.dumps(
                {
                    "jobs": [
                        {"id": f"job-{i}", "status": "done"}
                        for i, _ in enumerate(body.get("jobs", []))
                    ]
                }
            ).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *_):
        pass


@pytest.fixture()
def flaky_gateway():
    server = ThreadingHTTPServer(
        ("127.0.0.1", 0), _FlakySubmitHandler
    )
    server.inject_503 = 0
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


class TestClientStats:
    """Regression: the client's latency accounting must keep retry
    backoff out of service time. The seed's summary folded Retry-After
    sleeps into one number, so a submit that slept out two 503s looked
    like a 200 ms request against a server that served it in 2 ms."""

    def test_backoff_is_not_service_time(self, flaky_gateway):
        stub, url = flaky_gateway
        stub.inject_503 = 2
        client = ServerClient(
            url,
            max_retries=5,
            retry_jitter=0.0,
            rng=random.Random(0),
        )
        [envelope] = client.submit(cheap_spec(batch=16))
        assert envelope["status"] == "done"

        stats = client.client_stats()
        # Three HTTP round trips (503, 503, 200), two backoff sleeps.
        assert stats["service"].count == 3
        assert stats["backoff"].count == 2
        assert stats["retries"] == 2
        # The two 0.1 s Retry-After sleeps live in backoff...
        assert stats["backoff"].sum == pytest.approx(0.2)
        # ...and are absent from service time: a loopback round trip
        # is orders of magnitude shorter than one backoff sleep.
        assert stats["service"].max < 0.1

    def test_summary_reports_the_split(self, flaky_gateway):
        stub, url = flaky_gateway
        stub.inject_503 = 1
        client = ServerClient(
            url,
            max_retries=3,
            retry_jitter=0.0,
            rng=random.Random(0),
        )
        client.submit(cheap_spec(batch=16))
        summary = client.client_latency_summary()
        assert set(summary) == {"service", "backoff", "retries"}
        assert summary["retries"] == 1
        assert summary["service"]["count"] == 2
        assert summary["backoff"]["count"] == 1
        assert summary["backoff"]["min"] == pytest.approx(0.1)
        assert set(summary["service"]) >= {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        }

    def test_clean_clients_report_zero(self, live_server):
        _, client = live_server()
        client.submit(cheap_spec(batch=16), wait=30)
        stats = client.client_stats()
        assert stats["retries"] == 0
        assert stats["backoff"].count == 0
        assert stats["service"].count >= 1


class TestRequestTimeout:
    """The per-request socket budget: a gateway that accepts the TCP
    connection and then never answers must fail the request, not hang
    the client forever."""

    def test_defaults_to_the_timeout_alias(self):
        client = ServerClient("http://127.0.0.1:1", timeout=7.0)
        assert client.request_timeout == 7.0
        assert ServerClient(
            "http://127.0.0.1:1", timeout=7.0, request_timeout=2.0
        ).request_timeout == 2.0

    def test_nonpositive_request_timeout_rejected(self):
        for bad in (0, -1.5):
            with pytest.raises(ValueError):
                ServerClient("http://127.0.0.1:1", request_timeout=bad)

    def test_unresponsive_socket_times_out(self):
        import socket
        import time as _time

        # A listener that accepts connections (kernel backlog) but
        # never reads or responds — the stub of a wedged gateway.
        listener = socket.socket()
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            client = ServerClient(
                f"http://127.0.0.1:{port}",
                request_timeout=0.3,
                max_retries=0,
            )
            start = _time.monotonic()
            # URLError and socket.timeout are both OSError subclasses.
            with pytest.raises(OSError):
                client.healthz()
            assert _time.monotonic() - start < 5.0
        finally:
            listener.close()

    def test_long_poll_budget_rides_on_top(
        self, live_server, gated_executor
    ):
        # A ?wait= submit must not be killed by the socket timeout:
        # the wait budget is added on top, so a legitimate long poll
        # on a job that takes longer than request_timeout still
        # completes instead of raising mid-wait.
        release, _ = gated_executor
        _, client = live_server()
        client.request_timeout = 0.5
        envelopes = []

        def submit():
            envelopes.extend(client.submit(cheap_spec(batch=16), wait=30))

        thread = threading.Thread(target=submit)
        thread.start()
        time.sleep(1.0)  # hold execution well past request_timeout
        release.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert envelopes and envelopes[0]["status"] == "done"
