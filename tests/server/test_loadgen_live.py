"""The load-generation harness against a live gateway.

The headline test here is coordinated-omission correctness: with the
``dispatcher.stall`` fault site armed, a paced closed-loop run's
naive (send-time) latencies stay flat while the intended-time
latencies grow with every request queued behind the stall — and the
harness must report the intended-time discipline as its headline
number.
"""

from __future__ import annotations

import pytest

from repro.obs.loadgen import (
    LoadgenOptions,
    SpecMix,
    SweepOptions,
    run_load,
    run_sweep,
    validate_load_report,
)


def _quick_mix(**overrides) -> SpecMix:
    return SpecMix(**{"seed": 1, "hot_fraction": 0.6, **overrides})


class TestOpenLoopSmoke:
    def test_run_records_everything(self, live_server):
        server, _ = live_server()
        result = run_load(
            server.url,
            _quick_mix(),
            LoadgenOptions(
                process="poisson", rate=150.0, requests=25, workers=8
            ),
        )
        assert result.sent == 25
        assert result.completed == 25
        assert result.failures == 0
        assert result.latency.count == 25
        assert result.service_latency.count == 25
        # The hot share repeats one spec: the server must have served
        # part of the run from cache or coalescing.
        counters = result.attribution["counters"]
        assert counters["requests"] >= 25
        assert counters["cache_hits"] + counters["coalesced"] > 0
        assert counters["executions"] > 0
        per = result.attribution["per_request"]
        assert 0.0 < per["cache_path_fraction"] < 1.0
        spectrum = result.latency.spectrum()
        assert spectrum["min"] > 0
        assert spectrum["p50"] <= spectrum["p99"] <= spectrum["max"]

    def test_pure_closed_loop_equates_disciplines(self, live_server):
        server, _ = live_server()
        result = run_load(
            server.url,
            _quick_mix(),
            LoadgenOptions(
                process="closed", rate=None, requests=10, workers=2
            ),
        )
        assert result.completed == 10
        # No schedule -> intended time degenerates to send time and
        # the two recorders agree exactly.
        assert (
            result.latency.spectrum()
            == result.service_latency.spectrum()
        )
        assert result.late_sends == 0

    def test_sweep_emits_a_valid_report(self, live_server):
        server, _ = live_server()
        mix = _quick_mix()
        report = run_sweep(
            server.url,
            mix,
            SweepOptions(
                rates=[80.0, 160.0],
                requests_per_rate=12,
                workers=6,
                seed=3,
            ),
        )
        assert validate_load_report(report.to_dict()) == []
        assert len(report.curve) == 2
        assert [run["target_rate"] for run in report.runs] == [
            80.0,
            160.0,
        ]
        # Each rate got a disjoint cold-batch block.
        offsets = [run["mix"]["cold_offset"] for run in report.runs]
        assert len(set(offsets)) == 2
        for run in report.runs:
            assert run["failures"] == 0
            assert run["attribution"]["counters"]["executions"] > 0


class TestCoordinatedOmission:
    """A stalled server must not be able to hide behind a slow client.

    ``dispatcher.stall`` delays every execution by ``STALL`` seconds.
    A single paced closed-loop sender then falls ever further behind
    its schedule: the naive send-time latency of each request stays
    ~``STALL`` (flat — the classic coordinated-omission blind spot),
    while the intended-time latency grows by ~``STALL - spacing``
    per request.
    """

    STALL = 0.12
    RATE = 25.0  # 40 ms spacing, ~3x faster than the stalled service
    REQUESTS = 10

    def _stalled_run(self, live_server):
        server, _ = live_server(
            faults=f"seed=1;dispatcher.stall:rate=1,delay_ms="
            f"{int(self.STALL * 1000)}",
        )
        # All-cold mix: every request is a real (stalled) execution.
        return run_load(
            server.url,
            _quick_mix(hot_fraction=0.0),
            LoadgenOptions(
                process="closed",
                rate=self.RATE,
                requests=self.REQUESTS,
                workers=1,
            ),
        )

    def test_intended_time_latency_exposes_the_stall(
        self, live_server
    ):
        result = self._stalled_run(live_server)
        assert result.completed == self.REQUESTS
        naive = result.service_latency.spectrum()
        corrected = result.latency.spectrum()

        # Naive latency is flat around one stall; the corrected
        # discipline accumulates the backlog.
        assert naive["max"] < corrected["max"] / 2
        assert corrected["mean"] > naive["mean"] * 1.5
        # Linear growth: the last request waited roughly
        # (n-1) * (STALL - spacing) behind its intended time, far
        # beyond any single service time.
        backlog = (self.REQUESTS - 1) * (
            self.STALL - 1.0 / self.RATE
        )
        assert corrected["max"] > 0.5 * backlog + naive["p50"]

        # The sender could not keep its schedule — and said so.
        assert result.late_fraction > 0.5

    def test_harness_reports_the_corrected_discipline(
        self, live_server
    ):
        result = self._stalled_run(live_server)
        run_entry = result.to_dict()
        # The headline "latency" field IS the intended-time spectrum;
        # the naive one is explicitly labelled service_latency.
        assert run_entry["latency"] == result.latency.spectrum()
        assert (
            run_entry["service_latency"]
            == result.service_latency.spectrum()
        )
        assert run_entry["latency"]["max"] > (
            run_entry["service_latency"]["max"]
        )
