"""Bring your own optimizer: lower a custom update rule onto GradPIM.

The paper supports momentum SGD natively and sketches how richer
algorithms map (§VIII). This example defines *decoupled weight decay*
(SGDW, Loshchilov & Hutter) through the recipe DSL, compiles it to a
GradPIM command stream, verifies the stream functionally against a
numpy reference, and prints what the hardware would actually see:
command mix, per-column cost, scaler programming, and the Table I RFU
encodings of the first few commands.

Run:  python examples/custom_optimizer.py
"""

import numpy as np

from repro.dram.commands import CommandType
from repro.kernels.compiler import UpdateKernelCompiler
from repro.optim.base import (
    Lincomb,
    Optimizer,
    Term,
    UpdatePass,
    UpdateRecipe,
)
from repro.optim.precision import PRECISION_8_32
from repro.pim.functional import FunctionalDRAM, FunctionalExecutor
from repro.pim.isa import encode_command


class SGDW(Optimizer):
    """SGD with *decoupled* weight decay.

    ``v <- alpha*v - eta*g``; ``theta <- (1 - eta*lambda)*theta + v``.
    Unlike the paper's coupled form (Eq. 4), the decay multiplies theta
    directly — still a linear combination, so the base ALU suffices.
    """

    name = "sgdw"

    def __init__(self, eta=0.01, alpha=0.9, decay=1e-2):
        self.eta = eta
        self.alpha = alpha
        self.decay = decay

    def state_arrays(self):
        return ("momentum",)

    def recipe(self):
        return UpdateRecipe(
            passes=(
                UpdatePass(
                    ops=(
                        Lincomb(
                            "momentum",
                            (
                                Term(self.alpha, "momentum"),
                                Term(-self.eta, "grad"),
                            ),
                        ),
                        Lincomb(
                            "theta",
                            (
                                Term(
                                    1.0 - self.eta * self.decay, "theta"
                                ),
                                Term(1.0, "momentum"),
                            ),
                        ),
                    ),
                    inputs=frozenset({"theta", "grad", "momentum"}),
                    outputs=frozenset({"theta", "momentum"}),
                ),
            )
        )

    def reference_step(self, theta, grad, state):
        theta = np.asarray(theta, dtype=np.float64)
        v = self.alpha * np.asarray(
            state["momentum"], dtype=np.float64
        ) - self.eta * np.asarray(grad, dtype=np.float64)
        return (1 - self.eta * self.decay) * theta + v, {"momentum": v}


def main() -> None:
    rng = np.random.default_rng(3)
    n = 1024
    opt = SGDW()
    precision = PRECISION_8_32
    spec = precision.quant_spec()

    kernel = UpdateKernelCompiler().compile(opt, precision, n_params=n)

    print(f"SGDW lowered to GradPIM ({kernel.total_commands} commands "
          f"for {n} parameters)\n")
    counts = {}
    for cmd in kernel.commands:
        counts[cmd.kind] = counts.get(cmd.kind, 0) + 1
    for kind, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {kind.value:12s} {count:5d}")
    print(f"  => {kernel.commands_per_hp_column():.2f} commands per "
          "64 B column\n")

    print("scaler programming (2^n +- 2^m approximations):")
    for pass_idx, program in enumerate(kernel.scaler_programs()):
        for slot, value in program.items():
            print(f"  pass {pass_idx}, slot {slot}: {value.value:+.6f}")

    print("\nTable I RFU encodings of the first PIM commands:")
    shown = 0
    for cmd in kernel.commands:
        if cmd.kind in (CommandType.ACT, CommandType.PRE,
                        CommandType.MRW):
            continue
        print(f"  {cmd.tag:22s} -> 0b{encode_command(cmd):05b}")
        shown += 1
        if shown == 8:
            break

    # Functional verification against the float64 reference.
    theta = rng.normal(0, 0.3, n).astype(np.float32)
    grad = rng.normal(0, 0.2, n).astype(np.float32)
    v = rng.normal(0, 0.05, n).astype(np.float32)
    dram = FunctionalDRAM()
    kernel.layout.store_hp_array(dram, "theta", theta)
    kernel.layout.store_hp_array(dram, "momentum", v)
    kernel.layout.store_lp_array(dram, "q_grad", spec.quantize(grad))
    FunctionalExecutor(dram, spec).execute(kernel.commands)

    theta_pim = kernel.layout.load_hp_array(dram, "theta", np.float32, n)
    theta_ref, _ = opt.reference_step(theta, grad, {"momentum": v})
    err = float(np.max(np.abs(theta_pim - theta_ref)))
    print(f"\nmax |theta_PIM - theta_ref| = {err:.2e} "
          "(quantization + 2^n scaler error, as designed)")


if __name__ == "__main__":
    main()
