"""Trace a small simulation campaign and export it for Perfetto.

Enables the process-wide tracer, runs a four-job sweep across two
worker processes (so the trace shows parent *and* worker tracks), and
writes ``trace_demo.json`` — open it at https://ui.perfetto.dev or in
``chrome://tracing``. Also prints the per-job engine flight-recorder
deltas and the metrics the workers shipped back across the fork.

Run:  PYTHONPATH=src python examples/tracing_demo.py
"""

from __future__ import annotations

import json

from repro.obs import (
    default_registry,
    disable_tracing,
    enable_tracing,
)
from repro.service.api import submit_many
from repro.service.cache import ResultCache
from repro.service.spec import SimJobSpec

#: Four jobs on four distinct substrates (stripe widths): substrates
#: shared by several jobs are profiled once in the parent pre-fork, so
#: distinct widths keep every worker's flight recorder busy — which is
#: what this demo wants to show.
JOBS = [
    SimJobSpec(
        network="MLP1",
        batch=64,
        engine="periodic",
        columns_per_stripe=stripe,
        designs=("Baseline", "GradPIM-BD"),
    )
    for stripe in (8, 10, 12, 14)
]

OUT = "trace_demo.json"


def main() -> None:
    tracer = enable_tracing()
    results = submit_many(JOBS, jobs=2, cache=ResultCache())
    tracer.write(OUT)
    disable_tracing()

    print(f"{len(tracer.spans())} spans -> {OUT}")
    print("span names:", ", ".join(sorted(tracer.span_names())))

    for result in results:
        label = (
            f"{result.spec.network} "
            f"stripe={result.spec.columns_per_stripe}"
        )
        if result.engine_report is None:
            print(f"{label}: no engine activity (memoized)")
        else:
            print(f"{label}: {json.dumps(result.engine_report)}")

    print("\nworker metrics merged into the default registry:")
    print(default_registry().render().rstrip())


if __name__ == "__main__":
    main()
