"""Sweep DRAM timing grades x design points through repro.service.

Expands a timing-grade x precision campaign over ResNet-18 into job
specs, fans them across worker processes, and prints the per-design
speedup table plus geomean aggregates — then repeats the sweep to show
the content-addressed cache serving every job without re-simulation.

Run:  python examples/service_sweep.py
"""

from repro.service import ResultCache, run_sweep
from repro.system.design import DesignPoint
from repro.system.results import format_table

BASE = {
    "network": "ResNet18",
    # Compare the paper's two headline GradPIM variants per job.
    "designs": ["Baseline", "GradPIM-DR", "GradPIM-BD"],
    "columns_per_stripe": 16,
}
AXES = {
    "timing": ["DDR4-2133", "DDR4-3200", "HBM-like"],
    "precision": ["8/32", "32/32"],
}


def main() -> None:
    cache = ResultCache()
    sweep = run_sweep(BASE, AXES, jobs=4, cache=cache)

    print("ResNet-18: timing grade x precision, overall speedup\n")
    rows = [
        (
            row["timing"],
            row["precision"],
            f"{row['overall:GradPIM-DR']:.2f}x",
            f"{row['overall:GradPIM-BD']:.2f}x",
            f"{row['update:GradPIM-BD']:.2f}x",
        )
        for row in sweep.table()
    ]
    print(
        format_table(
            ["timing", "precision", "GP-DR overall", "GP-BD overall",
             "GP-BD update"],
            rows,
        )
    )
    print(
        "\ngeomean over the sweep: "
        f"GP-DR {sweep.geomean_overall(DesignPoint.GRADPIM_DIRECT):.2f}x, "
        f"GP-BD {sweep.geomean_overall(DesignPoint.GRADPIM_BUFFERED):.2f}x"
    )

    again = run_sweep(BASE, AXES, jobs=4, cache=cache)
    print(
        f"\nre-run: {again.cache_hit_fraction:.0%} of "
        f"{len(again.jobs)} jobs served from cache "
        f"(stats: {cache.stats()})"
    )


if __name__ == "__main__":
    main()
