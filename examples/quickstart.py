"""Quickstart: how much does GradPIM speed up a training step?

Simulates one ResNet-18 training iteration (batch 32, 8/32 mixed
precision, momentum SGD with weight decay) on all six design points of
the paper and prints the Fig. 9-style summary.

Run:  python examples/quickstart.py
"""

from repro import TrainingSimulator, DesignPoint
from repro.system.design import DESIGN_ORDER
from repro.system.results import format_table


def main() -> None:
    simulator = TrainingSimulator()  # the paper's default configuration
    result = simulator.simulate("ResNet18")

    print("ResNet-18, batch 32, 8/32 mixed precision\n")
    rows = []
    for design in DESIGN_ORDER:
        t = result.totals[design]
        rows.append(
            [
                design.value,
                f"{t.fwd_bwd * 1e3:.2f}",
                f"{t.update * 1e3:.2f}",
                f"{t.total * 1e3:.2f}",
                f"{result.overall_speedup(design):.2f}x",
                f"{result.update_speedup(design):.2f}x",
            ]
        )
    print(
        format_table(
            ["design", "fwd/bwd (ms)", "update (ms)", "total (ms)",
             "overall", "update speedup"],
            rows,
        )
    )

    bd = result.profiles[DesignPoint.GRADPIM_BUFFERED]
    print(
        f"\nGradPIM-Buffered runs the update at "
        f"{bd.internal_bandwidth / 1e9:.0f} GB/s of DRAM-internal "
        f"bandwidth\n(off-chip peak is 17.1 GB/s) — that is the whole "
        f"trick."
    )


if __name__ == "__main__":
    main()
