"""Serve simulations over HTTP and consume them with the client.

Boots the gateway on an ephemeral port, submits a 20-spec campaign
(plus a burst of duplicate requests to show in-flight coalescing)
through ``repro.server.client``, then prints the per-endpoint latency
percentiles the server accumulated in its ``/metrics`` histograms.

Run:  PYTHONPATH=src python examples/server_client.py
"""

import threading

from repro.server import ServerClient, ServerConfig, running_server

BASE = {
    "network": "MLP1",
    "columns_per_stripe": 8,
    "designs": ["Baseline", "GradPIM-DR", "GradPIM-BD"],
}

#: 20 distinct jobs: a batch-size sweep at two precision mixes.
CAMPAIGN = [
    dict(BASE, batch=batch, precision=precision)
    for precision in ("8/32", "32/32")
    for batch in (8, 16, 24, 32, 48, 64, 96, 128, 192, 256)
]


def main() -> None:
    with running_server(ServerConfig(port=0)) as server:
        print(f"server listening on {server.url}\n")
        client = ServerClient(server.url)

        envelopes = client.submit(CAMPAIGN, wait=60)
        done = [e for e in envelopes if e["status"] == "done"]
        print(f"batch: {len(done)}/{len(CAMPAIGN)} jobs done")
        if not done:
            print(
                "no jobs finished inside the wait cap — poll the ids "
                "in the envelopes (client.wait_for) on slow machines"
            )
            return
        best = max(
            done, key=lambda e: e["speedups"]["GradPIM-BD"]["overall"]
        )
        print(
            "best GradPIM-BD overall speedup: "
            f"{best['speedups']['GradPIM-BD']['overall']:.2f}x "
            f"(batch {best['spec']['batch']}, "
            f"precision {best['spec']['precision']})"
        )

        # A burst of identical requests: one execution, N-1 coalesced
        # attachments (or cache hits once the result lands).
        hot = dict(BASE, batch=512)
        burst = [
            threading.Thread(
                target=lambda: ServerClient(server.url).submit(
                    hot, wait=60
                )
            )
            for _ in range(8)
        ]
        for thread in burst:
            thread.start()
        for thread in burst:
            thread.join()
        print(
            "\nburst of 8 identical requests: "
            f"executions={server.metrics.counter_value('executions_total'):.0f} "
            f"coalesced={server.metrics.counter_value('coalesced_total'):.0f} "
            f"cached={server.metrics.counter_value('cache_hits_total'):.0f}"
        )

        print("\nper-endpoint request latency (from /metrics):")
        for endpoint, stats in sorted(client.latency_summary().items()):
            print(
                f"  {endpoint:28s} n={stats.get('count', 0):4.0f}  "
                f"p50 {stats.get('p50', 0) * 1e3:7.2f} ms  "
                f"p95 {stats.get('p95', 0) * 1e3:7.2f} ms  "
                f"p99 {stats.get('p99', 0) * 1e3:7.2f} ms"
            )


if __name__ == "__main__":
    main()
