"""Scaling out: GradPIM under distributed data parallelism (Fig. 14).

Data parallelism shrinks forward/backward with the per-node batch but
leaves the parameter update untouched — it is the sequential fraction
of training. This example sweeps node counts on two contrasting
workloads and shows GradPIM's advantage widening exactly as Amdahl
predicts, plus the §V-D trick of running all-reduce's gradient
accumulation on the PIM units.

Run:  python examples/distributed_training.py
"""

from repro import DesignPoint, TrainingSimulator
from repro.system.distributed import DistributedModel
from repro.system.results import format_table


def main() -> None:
    simulator = TrainingSimulator(
        designs=(DesignPoint.BASELINE, DesignPoint.GRADPIM_BUFFERED)
    )

    for network in ("ResNet18", "AlphaGoZero"):
        print(f"[{network}]")
        rows = []
        for nodes in (2, 4, 8):
            model = DistributedModel(simulator, nodes=nodes)
            r = model.simulate(network)
            rows.append(
                [
                    nodes,
                    f"{r.baseline.comm * 1e3:.2f}",
                    f"{r.baseline.fwd_bwd * 1e3:.2f}",
                    f"{r.baseline.update * 1e3:.2f}",
                    f"{r.gradpim.total * 1e3:.2f}",
                    f"{r.speedup:.2f}x",
                ]
            )
        print(
            format_table(
                ["nodes", "base comm (ms)", "base fw/bw (ms)",
                 "base update (ms)", "GradPIM total (ms)", "speedup"],
                rows,
            )
        )
        print()

    print(
        "The update does not parallelize with data parallelism, so its"
        "\nshare grows with node count - and GradPIM's speedup with it"
        "\n(paper: ~2x at 4 nodes)."
    )


if __name__ == "__main__":
    main()
