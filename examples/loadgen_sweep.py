"""Find the gateway's saturation knee with an open-loop rate sweep.

Boots the gateway on an ephemeral port, measures its raw capacity
with a closed-loop calibration run, then sweeps seeded Poisson
arrival rates around that capacity with the open-loop harness —
latency measured from *intended* send times (coordinated-omission
safe), late sends counted, and server-side cost attributed per stage
by diffing ``/metrics`` around each run. Prints the resulting
throughput-vs-latency curve and the detected knee.

Run:  PYTHONPATH=src python examples/loadgen_sweep.py

The same study is available as a CLI (``repro-loadgen --self-serve``)
and is what ``benchmarks/bench_server.py`` records into
``BENCH_server.json``.
"""

from repro.obs.loadgen import (
    LoadgenOptions,
    SpecMix,
    SweepOptions,
    run_load,
    run_sweep,
)
from repro.server import ServerConfig, running_server

REQUESTS = 80
WORKERS = 8


def main() -> None:
    # 70 % of requests repeat one hot spec (cache/coalesce path),
    # the rest are unique cold simulations — same seed, same stream.
    mix = SpecMix(seed=42, hot_fraction=0.7)

    with running_server(ServerConfig(port=0)) as server:
        print(f"server listening on {server.url}\n")

        # 1. Closed loop: send-on-completion. This number LOOKS great
        #    under overload because a stalled server silently slows
        #    the request stream down — that's coordinated omission.
        closed = run_load(
            server.url,
            mix,
            LoadgenOptions(
                process="closed",
                rate=None,
                requests=REQUESTS,
                workers=WORKERS,
            ),
        )
        capacity = closed.achieved_rps
        print(
            f"closed-loop calibration: {capacity:.0f} req/s, "
            f"naive p99 "
            f"{closed.latency.spectrum()['p99'] * 1e3:.1f} ms"
        )

        # 2. Open loop: the schedule does not care how the server is
        #    doing. Rates straddle the measured capacity so the curve
        #    shows both the comfortable and the overloaded regime.
        report = run_sweep(
            server.url,
            mix,
            SweepOptions(
                rates=sorted(
                    capacity * f for f in (0.3, 0.6, 1.2, 2.4)
                ),
                requests_per_rate=REQUESTS,
                workers=WORKERS,
                seed=42,
                slo_p99_seconds=0.25,
                max_late_fraction=0.10,
            ),
            closed_loop=closed,
        )

    print("\nthroughput vs latency (open loop, intended-time):")
    for point in report.curve:
        print(
            f"  rate {point['rate']:7.1f} req/s -> "
            f"{point['throughput_rps']:7.1f} req/s  "
            f"p50 {point['p50'] * 1e3:7.2f} ms  "
            f"p99 {point['p99'] * 1e3:7.2f} ms  "
            f"late {point['late_fraction']:5.1%}"
        )

    if report.knee:
        print(
            f"\nsaturation knee: {report.knee['rate']:.0f} req/s "
            f"({report.knee['reason']}); honest operating range "
            f"tops out at {report.knee['last_good_rate'] or 0:.0f} "
            "req/s"
        )
    else:
        print("\nno knee inside the swept range — the server kept up")

    # 3. Where did the time go? The harness diffed /metrics around
    #    each run: queue wait vs execute vs the near-free cache path.
    last = report.runs[-1]
    per = last["attribution"]["per_request"]
    print(
        f"\nper-stage attribution at {last['target_rate']:.0f} req/s:"
        f"\n  cache-path fraction {per['cache_path_fraction']:.1%}"
        f"\n  mean queue wait     {per['queue_seconds'] * 1e3:.2f} ms"
        f"\n  mean execute        {per['execute_seconds'] * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
