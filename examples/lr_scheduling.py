"""Learning-rate scheduling on GradPIM hardware (paper §VIII).

The learning rate lives in a scaler slot, so scheduling it means
reprogramming 2^n±2^m values through MRW commands. This example
compares the three mechanisms the paper sketches on a 90-"epoch"
training run: exact power-of-two stepping, and approximated cosine /
polynomial decay — showing the approximation error and the (tiny)
MRW reprogramming cost of each.

Run:  python examples/lr_scheduling.py
"""

from repro.optim.schedule import (
    CosineSchedule,
    PolynomialSchedule,
    StepSchedule,
    schedule_error,
)
from repro.system.results import format_table

STEPS_PER_EPOCH = 100
EPOCHS = 90


def main() -> None:
    total = STEPS_PER_EPOCH * EPOCHS
    schedules = {
        "step (/2 every 30 epochs)": StepSchedule(
            0.125, total, period=30 * STEPS_PER_EPOCH, factor=0.5
        ),
        "cosine annealing": CosineSchedule(0.125, total),
        "polynomial (p=0.9)": PolynomialSchedule(0.125, total),
    }

    rows = []
    for name, sched in schedules.items():
        points = sched.mrw_reprogram_points()
        rows.append(
            [
                name,
                f"{schedule_error(sched) * 100:.1f}%",
                len(points),
                f"{len(points) / total * 100:.2f}%",
            ]
        )
    print(f"{EPOCHS} epochs x {STEPS_PER_EPOCH} steps "
          f"({total} updates)\n")
    print(
        format_table(
            ["schedule", "worst LR error", "MRW reprograms",
             "reprograms/steps"],
            rows,
        )
    )

    print("\ncosine annealing as the hardware sees it "
          "(exact -> programmed):")
    sched = schedules["cosine annealing"]
    for epoch in (0, 22, 45, 67, 89):
        step = epoch * STEPS_PER_EPOCH
        exact = sched.lr(step)
        hw = sched.hardware_lr(step)
        print(
            f"  epoch {epoch:2d}: {exact:.6f} -> {hw.value:.6f} "
            f"(2^{hw.n}"
            + (f" {'+' if hw.term > 0 else '-'} 2^{hw.m}"
               if hw.term else "")
            + ")"
        )

    print(
        "\nEach reprogram is one MRW per rank (~"
        "tMOD = 24 cycles): even the cosine schedule costs well under"
        "\n0.1% of update-phase command slots — the paper's 'small "
        "overhead'."
    )


if __name__ == "__main__":
    main()
