"""Gradient descent *inside simulated DRAM*: a full training loop.

This example fits a linear model to synthetic data where every
parameter update executes as a GradPIM command stream against the
byte-level functional DRAM: gradients are quantized to int8, written to
the q_grad rows, dequantized in-DRAM, the momentum-SGD update runs on
the bank-group ALUs, and the re-quantized weights are read back — the
complete Fig. 5 pipeline, every step of every epoch.

Alongside the numerics, the cycle-level model prices each update so you
can watch baseline-vs-GradPIM time diverge while the loss falls.

Run:  python examples/pim_training_loop.py
"""

import numpy as np

from repro import DesignPoint, MomentumSGD, UpdateKernelCompiler
from repro.optim.precision import PRECISION_8_32
from repro.pim.functional import FunctionalDRAM, FunctionalExecutor
from repro.system.update_model import UpdatePhaseModel

N_FEATURES = 512
N_SAMPLES = 256
EPOCHS = 30


def main() -> None:
    rng = np.random.default_rng(7)
    true_w = rng.normal(0, 0.5, N_FEATURES).astype(np.float32)
    x = rng.normal(0, 1.0, (N_SAMPLES, N_FEATURES)).astype(np.float32)
    y = x @ true_w + rng.normal(0, 0.01, N_SAMPLES).astype(np.float32)

    optimizer = MomentumSGD(eta=0.01, alpha=0.9)
    precision = PRECISION_8_32
    spec = precision.quant_spec(exponent=-8)

    # Compile the update kernel once; its layout tells us where the
    # parameter arrays live in the (simulated) device.
    kernel = UpdateKernelCompiler().compile(
        optimizer, precision, n_params=N_FEATURES
    )
    dram = FunctionalDRAM()
    layout = kernel.layout

    w = np.zeros(N_FEATURES, dtype=np.float32)
    v = np.zeros(N_FEATURES, dtype=np.float32)
    layout.store_hp_array(dram, "theta", w)
    layout.store_hp_array(dram, "momentum", v)

    # Price one update on the cycle-level model (cached across epochs).
    updates = UpdatePhaseModel(columns_per_stripe=16)
    base = updates.profile(DesignPoint.BASELINE, optimizer, precision)
    pim = updates.profile(
        DesignPoint.GRADPIM_BUFFERED, optimizer, precision
    )

    print(
        f"linear regression, {N_FEATURES} parameters, "
        f"{N_SAMPLES} samples, momentum SGD on GradPIM\n"
    )
    print("epoch   loss        update: baseline    GradPIM-BD")
    executor = FunctionalExecutor(dram, spec)
    for epoch in range(EPOCHS):
        # Forward/backward on the "NPU" (numpy): low-precision grads.
        w = layout.load_hp_array(dram, "theta", np.float32, N_FEATURES)
        pred = x @ w
        loss = float(np.mean((pred - y) ** 2))
        grad = (2.0 / N_SAMPLES) * (x.T @ (pred - y))

        # The NPU writes quantized gradients into the q_grad rows...
        layout.store_lp_array(dram, "q_grad", spec.quantize(grad))
        # ...and the memory controller plays the GradPIM kernel.
        executor.execute(kernel.commands)

        if epoch % 5 == 0 or epoch == EPOCHS - 1:
            print(
                f"{epoch:5d}   {loss:9.5f}   "
                f"{base.update_seconds(N_FEATURES) * 1e6:9.3f} us    "
                f"{pim.update_seconds(N_FEATURES) * 1e6:9.3f} us"
            )

    final_w = layout.load_hp_array(dram, "theta", np.float32, N_FEATURES)
    err = float(np.max(np.abs(final_w - true_w)))
    print(f"\nmax |w - w*| after training in-DRAM: {err:.4f}")
    print(
        f"update speedup at this size: "
        f"{base.seconds_per_param / pim.seconds_per_param:.2f}x "
        "(GradPIM-Buffered over the no-PIM baseline)"
    )


if __name__ == "__main__":
    main()
