"""Peek inside the DDR4 model: schedule a kernel and read the trace.

Compiles a small momentum-SGD sample, schedules it under the
direct-attached and buffered command interfaces, and prints a
cycle-annotated excerpt plus the aggregate statistics Fig. 11 is built
from — useful when porting the simulator to new timing grades.

Run:  python examples/dram_timing_explorer.py
"""

import copy

from repro import (
    CommandScheduler,
    DDR4_2133,
    IssueModel,
    MomentumSGD,
    UpdateKernelCompiler,
    validate_trace,
)
from repro.dram.geometry import DEFAULT_GEOMETRY
from repro.optim.precision import PRECISION_8_32


def main() -> None:
    geometry = DEFAULT_GEOMETRY
    kernel = UpdateKernelCompiler(geometry).compile(
        MomentumSGD(eta=0.01, alpha=0.9, weight_decay=1e-4),
        PRECISION_8_32,
        columns_per_stripe=8,
    )
    print(
        f"kernel: {kernel.total_commands} commands, phases "
        f"{kernel.phase_counts}\n"
    )

    for label, issue_model in (
        ("GradPIM-Direct (1 command port)",
         IssueModel.direct(geometry.ranks)),
        ("GradPIM-Buffered (1 port per rank)",
         IssueModel.buffered(geometry.ranks)),
    ):
        commands = copy.deepcopy(kernel.commands)
        scheduler = CommandScheduler(DDR4_2133, geometry, issue_model)
        result = scheduler.run(commands)
        validate_trace(
            result.commands, DDR4_2133, geometry,
            issue_model.port_of_rank,
        )
        stats = result.stats
        print(f"[{label}]")
        print(f"  cycles:            {stats.total_cycles}")
        print(f"  command-bus util:  "
              f"{stats.command_bus_utilization() * 100:.0f}%")
        print(f"  internal bw:       "
              f"{stats.internal_bandwidth(DDR4_2133, geometry) / 1e9:.1f}"
              " GB/s")
        print("  first ten issued commands:")
        for cmd in sorted(
            result.commands, key=lambda c: c.issue_cycle
        )[:10]:
            where = f"r{cmd.rank}/bg{cmd.bankgroup}/b{cmd.bank}"
            print(
                f"    cycle {cmd.issue_cycle:4d}  "
                f"{cmd.kind.value:12s} {where:12s} {cmd.tag or ''}"
            )
        print()

    peak = DDR4_2133.peak_internal_bandwidth(
        geometry.bankgroups, geometry.ranks
    )
    print(f"peak internal bandwidth of this configuration: "
          f"{peak / 1e9:.1f} GB/s (paper: 181.28 GB/s)")


if __name__ == "__main__":
    main()
